// Bitstream prefetching: overlap preloading with the previous task's compute
// (paper §III-A-1: predicted schedules let "configuration data preloading be
// done during idle time which does not affect the system computational
// performance and could significantly improve the reconfiguration
// bandwidth").
//
// Given a Schedule, the analyzer places each activation's BRAM preload as
// late as possible inside the region's busy/idle timeline and reports how
// much of it hides under compute — and what the serial (no-prefetch)
// timeline would have cost instead. The runtime counterpart that turns these
// slots into actual speculative preloads lives in cache/prefetch_engine.hpp.
#pragma once

#include "sched/scheduler.hpp"

namespace uparc::sched {

struct PrefetchSlot {
  std::size_t activation_index = 0;
  TimePs preload_start{};
  TimePs preload_end{};
  bool fully_hidden = false;  ///< preload finished before the reconfig start
  TimePs exposed{};           ///< serialization added when not fully hidden
};

struct PrefetchReport {
  std::vector<PrefetchSlot> slots;
  TimePs total_preload{};
  TimePs total_exposed{};  ///< with prefetch: preload time that still serializes
  TimePs serial_penalty{}; ///< without prefetch: every preload serializes
  TimePs total_reconfig{}; ///< programming time itself (prefetch cannot hide it)
  /// Effective end-to-end bandwidth gain of prefetching: serialized time
  /// avoided as a fraction of the no-prefetch reconfiguration cost (serial
  /// preloads plus the programming time itself). An empty schedule hides
  /// everything there is to hide, so the degenerate value is 1.0.
  [[nodiscard]] double hidden_fraction() const {
    const double denom = static_cast<double>((serial_penalty + total_reconfig).ps());
    if (denom <= 0.0) return 1.0;
    return static_cast<double>((serial_penalty - total_exposed).ps()) / denom;
  }
};

struct PrefetchParams {
  /// Manager preload throughput (copy loop at 100 MHz, 8 cycles/word
  /// => 50 MB/s by default).
  Bandwidth preload_bandwidth = Bandwidth(50e6);
  /// Earliest instant the manager may begin preloading at all — a lint gate,
  /// recovery delay, or late harness start pushes this past zero. Every
  /// slot's window opens no earlier than this.
  TimePs origin{};
};

/// Analyzes prefetch opportunities in `schedule`. The first slot's window
/// opens at the schedule's actual origin (the first activation's ready time,
/// or `params.origin` if later), not at time zero.
[[nodiscard]] PrefetchReport analyze_prefetch(const TaskSet& set, const Schedule& schedule,
                                              PrefetchParams params = {});

}  // namespace uparc::sched
