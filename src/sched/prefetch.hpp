// Bitstream prefetching: overlap preloading with the previous task's compute
// (paper §III-A-1: predicted schedules let "configuration data preloading be
// done during idle time which does not affect the system computational
// performance and could significantly improve the reconfiguration
// bandwidth").
//
// Given a Schedule, the analyzer places each activation's BRAM preload as
// late as possible inside the region's busy/idle timeline and reports how
// much of it hides under compute — and what the serial (no-prefetch)
// timeline would have cost instead.
#pragma once

#include "sched/scheduler.hpp"

namespace uparc::sched {

struct PrefetchSlot {
  std::size_t activation_index = 0;
  TimePs preload_start{};
  TimePs preload_end{};
  bool fully_hidden = false;  ///< preload finished before the reconfig start
  TimePs exposed{};           ///< serialization added when not fully hidden
};

struct PrefetchReport {
  std::vector<PrefetchSlot> slots;
  TimePs total_preload{};
  TimePs total_exposed{};  ///< with prefetch: preload time that still serializes
  TimePs serial_penalty{}; ///< without prefetch: every preload serializes
  /// Effective end-to-end bandwidth gain of prefetching: serialized time
  /// avoided as a fraction of the no-prefetch reconfiguration cost.
  [[nodiscard]] double hidden_fraction() const {
    if (total_preload.ps() == 0) return 0.0;
    return 1.0 - static_cast<double>(total_exposed.ps()) / total_preload.ps();
  }
};

struct PrefetchParams {
  /// Manager preload throughput (copy loop at 100 MHz, 8 cycles/word
  /// => 50 MB/s by default).
  Bandwidth preload_bandwidth = Bandwidth(50e6);
};

/// Analyzes prefetch opportunities in `schedule`.
[[nodiscard]] PrefetchReport analyze_prefetch(const TaskSet& set, const Schedule& schedule,
                                              PrefetchParams params = {});

}  // namespace uparc::sched
