#include "sched/prefetch.hpp"

#include <algorithm>

namespace uparc::sched {

PrefetchReport analyze_prefetch(const TaskSet& set, const Schedule& schedule,
                                PrefetchParams params) {
  PrefetchReport report;
  for (std::size_t i = 0; i < schedule.slots.size(); ++i) {
    const ScheduledSlot& slot = schedule.slots[i];
    const TaskSpec& task = set.task_of(slot.activation);

    const double preload_s =
        static_cast<double>(task.bitstream_bytes) / params.preload_bandwidth.bytes_per_sec();
    const TimePs preload = TimePs::from_seconds(preload_s);

    PrefetchSlot p;
    p.activation_index = i;
    // The preload may run while the *previous* activation computes (dual-
    // port BRAM: port A preloads while port B is idle or serving the
    // previous stream — the paper's design point). Earliest start: the
    // previous reconfiguration's end — or, for the first slot, the
    // schedule's actual origin (the activation's ready time; the manager
    // has nothing to preload before the workload exists). Either way the
    // window never opens before params.origin. Latest useful end: this
    // reconfig start.
    const TimePs earliest =
        i == 0 ? schedule.slots[0].activation.ready_time : schedule.slots[i - 1].reconfig_end;
    const TimePs window_start = std::max(earliest, params.origin);
    const TimePs window_end = slot.reconfig_start;

    if (window_start + preload <= window_end) {
      p.preload_end = window_end;
      p.preload_start = window_end - preload;
      p.fully_hidden = true;
      p.exposed = TimePs(0);
    } else {
      p.preload_start = window_start;
      p.preload_end = window_start + preload;
      p.fully_hidden = false;
      p.exposed = p.preload_end - window_end;
    }

    report.total_preload += preload;
    report.total_exposed += p.exposed;
    report.serial_penalty += preload;
    report.total_reconfig += slot.reconfig_end - slot.reconfig_start;
    report.slots.push_back(p);
  }
  return report;
}

}  // namespace uparc::sched
