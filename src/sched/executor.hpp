// Schedule executor: runs an offline Schedule on the live, cycle-accurate
// system, closing the loop between the planner's predictions and the
// simulated hardware. Preloads are overlapped with the previous activation's
// compute where the plan allows (the §III-A-1 prefetch), frequencies are
// programmed through DyCloGen per slot, and per-slot actuals are recorded
// next to the predictions.
#pragma once

#include "core/system.hpp"
#include "sched/scheduler.hpp"

namespace uparc::sched {

struct ExecutedSlot {
  ScheduledSlot predicted;
  TimePs actual_reconfig_start{};
  TimePs actual_reconfig_end{};
  TimePs actual_compute_end{};
  double actual_energy_uj = 0;
  bool success = false;
  bool deadline_met = false;
  std::string error;

  [[nodiscard]] TimePs actual_reconfig_time() const {
    return actual_reconfig_end - actual_reconfig_start;
  }
};

struct ExecutionReport {
  std::vector<ExecutedSlot> slots;
  TimePs makespan{};
  unsigned deadline_misses = 0;
  unsigned failures = 0;
  double total_reconfig_energy_uj = 0;

  [[nodiscard]] bool all_succeeded() const noexcept { return failures == 0; }
};

class ScheduleExecutor {
 public:
  /// `images[i]` is the bitstream of TaskSet::tasks()[i]; image sizes must
  /// match the TaskSpec bitstream sizes the plan was built from.
  ScheduleExecutor(core::System& system, std::vector<bits::PartialBitstream> images);

  /// Executes `plan` (built from `set`) to completion on the live system.
  [[nodiscard]] ExecutionReport run(const TaskSet& set, const Schedule& plan);

 private:
  core::System& system_;
  std::vector<bits::PartialBitstream> images_;
};

}  // namespace uparc::sched
