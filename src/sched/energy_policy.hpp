// Global power optimization (paper §VI future work): evaluate frequency
// policies over a whole task set and report the energy/performance
// trade-off — the "power optimization algorithm" that would manage UPaRC.
#pragma once

#include "sched/prefetch.hpp"

namespace uparc::sched {

struct PolicyOutcome {
  manager::FrequencyPolicy policy;
  Schedule schedule;
  double reconfig_energy_uj = 0;
  double peak_power_mw = 0;
  TimePs makespan{};
  unsigned deadline_misses = 0;
};

struct PolicyComparison {
  std::vector<PolicyOutcome> outcomes;

  /// Energy saved by the lowest-energy feasible policy vs always-max.
  [[nodiscard]] double savings_vs_max_percent() const;
  /// Peak-power reduction of kMinPowerDeadline vs always-max — the paper's
  /// §V "power-aware solution" benefit (thermal / supply headroom).
  [[nodiscard]] double power_reduction_vs_max_percent() const;
  /// The lowest-energy outcome that misses no deadline (nullptr if none).
  [[nodiscard]] const PolicyOutcome* best_feasible() const;
  [[nodiscard]] const PolicyOutcome* find(manager::FrequencyPolicy policy) const;
};

/// Runs every FrequencyPolicy over `set` and collects the outcomes.
[[nodiscard]] PolicyComparison compare_policies(const TaskSet& set,
                                                const OfflineScheduler& scheduler);

}  // namespace uparc::sched
