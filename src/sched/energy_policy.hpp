// Global power optimization (paper §VI future work): evaluate frequency
// policies over a whole task set and report the energy/performance
// trade-off — the "power optimization algorithm" that would manage UPaRC.
#pragma once

#include "sched/prefetch.hpp"

namespace uparc::sched {

struct PolicyOutcome {
  manager::FrequencyPolicy policy;
  Schedule schedule;
  double reconfig_energy_uj = 0;
  double peak_power_mw = 0;
  TimePs makespan{};
  unsigned deadline_misses = 0;
};

struct PolicyComparison {
  std::vector<PolicyOutcome> outcomes;

  /// Energy saved by the lowest-energy feasible policy vs always-max.
  [[nodiscard]] double savings_vs_max_percent() const;
  /// Peak-power reduction of kMinPowerDeadline vs always-max — the paper's
  /// §V "power-aware solution" benefit (thermal / supply headroom).
  [[nodiscard]] double power_reduction_vs_max_percent() const;
  /// The lowest-energy outcome that misses no deadline (nullptr if none).
  [[nodiscard]] const PolicyOutcome* best_feasible() const;
  [[nodiscard]] const PolicyOutcome* find(manager::FrequencyPolicy policy) const;
};

/// Runs every FrequencyPolicy over `set` and collects the outcomes.
[[nodiscard]] PolicyComparison compare_policies(const TaskSet& set,
                                                const OfflineScheduler& scheduler);

/// Calibrated cost of re-fetching a bitstream through the manager's
/// external-storage preload path: copy time at the preload bandwidth times
/// the manager's active draw. The cache's energy-weighted eviction policy
/// uses it to keep the entries that are most expensive to restore.
struct EnergyPolicy {
  /// Manager copy-loop throughput (8 cycles/word at 100 MHz => 50 MB/s).
  Bandwidth preload_bandwidth = Bandwidth(50e6);
  /// Manager draw while the copy loop runs (see power/calibration.hpp).
  double manager_active_mw = power::kManagerActiveWaitMw;

  /// Energy (uJ) a full re-preload of `bytes` would burn.
  [[nodiscard]] double refetch_cost_uj(std::size_t bytes) const;
};

}  // namespace uparc::sched
