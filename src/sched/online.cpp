#include "sched/online.hpp"

#include <algorithm>
#include <stdexcept>

namespace uparc::sched {

OnlineScheduler::OnlineScheduler(core::System& system, std::string name,
                                 std::vector<bits::PartialBitstream> images,
                                 manager::FrequencyPolicy policy)
    : Module(system.sim(), std::move(name)),
      system_(system),
      images_(std::move(images)),
      policy_(policy) {}

void OnlineScheduler::submit(OnlineJob job) {
  if (job.image_index >= images_.size()) {
    throw std::invalid_argument("OnlineScheduler: job references unknown image");
  }
  ++stats_.submitted;
  // EDF insert.
  auto it = std::lower_bound(
      queue_.begin(), queue_.end(), job,
      [](const OnlineJob& a, const OnlineJob& b) { return a.deadline < b.deadline; });
  queue_.insert(it, std::move(job));
  pump();
}

void OnlineScheduler::finish_job(OnlineJobRecord record) {
  if (record.success) {
    ++stats_.completed;
    if (!record.deadline_met) ++stats_.missed;
    stats_.reconfig_energy_uj += record.energy_uj;
  } else {
    ++stats_.failed;
  }
  records_.push_back(std::move(record));
  busy_ = false;
  pump();
}

void OnlineScheduler::pump() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  OnlineJob job = std::move(queue_.front());
  queue_.pop_front();

  OnlineJobRecord record;
  record.job = job;
  record.submitted = sim_.now();

  core::Uparc& uparc = system_.uparc();
  Status staged = uparc.stage(images_[job.image_index]);
  if (!staged.ok()) {
    record.error = staged.error().message;
    finish_job(std::move(record));
    return;
  }

  // Frequency per policy against the job's remaining slack, net of the
  // preload copy (known after stage()) and the DCM relock that precede the
  // launch. An infeasible deadline falls back to maximum performance.
  const TimePs lead = uparc.preloader().last_duration() + uparc.config().dcm_lock_time;
  const TimePs now_plus_lead = sim_.now() + lead;
  const TimePs slack =
      job.deadline > now_plus_lead ? job.deadline - now_plus_lead : TimePs(0);
  auto plan = uparc.adapt(policy_, slack);
  if (!plan) {
    plan = uparc.adapt(manager::FrequencyPolicy::kMaxPerformance);
    stats().add("deadline_infeasible");
  }
  record.frequency = plan ? plan->choice.f_out : Frequency();

  record.reconfig_start = sim_.now();
  uparc.reconfigure([this, record = std::move(record)](const ctrl::ReconfigResult& r) mutable {
    record.success = r.success;
    record.error = r.error;
    record.energy_uj = r.energy_uj;
    record.compute_start = r.end;
    record.deadline_met = r.success && r.end <= record.job.deadline;
    if (!r.success) {
      finish_job(std::move(record));
      return;
    }
    // Occupy the region for the compute phase, then release.
    sim_.schedule_in(record.job.compute_time,
                     [this, record = std::move(record)]() mutable {
                       record.compute_end = sim_.now();
                       finish_job(std::move(record));
                     });
  });
}

}  // namespace uparc::sched
