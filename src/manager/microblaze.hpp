// MicroBlaze manager cost model.
//
// The Manager's observable effect on the experiments is *time* (cycles spent
// parsing, copying, launching) and *power* (a constant draw while busy or
// actively waiting). An instruction-cost model captures both without an ISA
// simulator: each routine charges a calibrated cycle budget.
//
// Calibration anchors:
//   * Fig. 5: the constant control+measurement overhead per reconfiguration
//     is ~1.25 us at 100 MHz => ~125 cycles (kControlLaunch).
//   * xps_hwicap cached mode reaches 14.5 MB/s at 100 MHz => ~27.5 cycles
//     per 32-bit word for the read-word/write-FIFO/poll-status loop.
//   * Section V: "without processor optimizations" the paper's own xps run
//     moved 1.5 MB/s => ~267 cycles/word (kXpsUnoptimizedCopyLoop).
#pragma once

#include "sim/module.hpp"

namespace uparc::manager {

struct MicroBlazeCosts {
  u32 control_launch = 125;        ///< Start pulse + bookkeeping (Fig. 5 anchor)
  u32 copy_loop_word = 8;          ///< tight LMB->BRAM word copy (preload)
  u32 xps_copy_loop_word = 27;     ///< cached xps_hwicap word loop (14.5 MB/s)
  u32 xps_unoptimized_word = 267;  ///< unoptimized xps loop (1.5 MB/s, §V)
  u32 header_parse = 420;          ///< .bit preamble TLV parse
  u32 sector_setup = 180;          ///< SystemACE sector command setup
  u32 irq_entry = 60;              ///< interrupt entry/exit (non-active-wait)
  u32 poll_iteration = 6;          ///< one Finish-poll spin iteration
};

class MicroBlaze : public sim::Module {
 public:
  MicroBlaze(sim::Simulation& sim, std::string name, Frequency f = Frequency::mhz(100),
             MicroBlazeCosts costs = {});

  [[nodiscard]] Frequency frequency() const noexcept { return freq_; }
  [[nodiscard]] const MicroBlazeCosts& costs() const noexcept { return costs_; }

  /// Wall time for `n` processor cycles.
  [[nodiscard]] TimePs cycles(u64 n) const { return freq_.period() * n; }

  /// Runs a routine costing `n` cycles, then invokes `done`. Also
  /// accumulates busy time for energy accounting.
  void execute(u64 n, std::function<void()> done);

  [[nodiscard]] TimePs busy_time() const noexcept { return busy_; }

 private:
  Frequency freq_;
  MicroBlazeCosts costs_;
  TimePs busy_{};
};

}  // namespace uparc::manager
