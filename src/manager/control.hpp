// Reconfiguration control (Manager task 2, paper §III-A-2): pulse Start,
// wait for Finish. The paper's implementation actively waits — which is why
// its measured energy falls with frequency — so both active-wait and
// interrupt-driven variants exist (the ablation benches compare them).
#pragma once

#include <memory>

#include "manager/microblaze.hpp"
#include "power/calibration.hpp"
#include "power/model.hpp"

namespace uparc::manager {

enum class WaitMode { kActiveWait, kInterrupt };

class ReconfigControl : public sim::Module {
 public:
  /// `rail` may be null (no power accounting, e.g. in unit tests).
  /// `burst_mw`/`wait_mw` parameterize the manager implementation's draw
  /// (defaults: the paper's MicroBlaze levels; see manager/profiles.hpp).
  ReconfigControl(sim::Simulation& sim, std::string name, MicroBlaze& manager,
                  power::Rail* rail, WaitMode mode = WaitMode::kActiveWait,
                  double burst_mw = power::kManagerControlBurstMw,
                  double wait_mw = power::kManagerActiveWaitMw);

  /// Launches a reconfiguration: charges the control-launch cycles (the
  /// Fig. 5 constant overhead) with the control-burst power, invokes
  /// `start(finish)` — the hardware must call `finish()` when its Finish
  /// signal rises — then waits per the WaitMode and finally calls `done`.
  void launch(std::function<void(std::function<void()> finish)> start,
              std::function<void()> done);

  [[nodiscard]] WaitMode mode() const noexcept { return mode_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] u64 launches() const noexcept { return launches_; }
  /// Manager-side overhead charged per launch (excludes the wait itself).
  [[nodiscard]] TimePs control_overhead() const;

 private:
  MicroBlaze& manager_;
  WaitMode mode_;
  std::unique_ptr<power::ConstantPower> burst_power_;
  std::unique_ptr<power::ConstantPower> wait_power_;
  bool busy_ = false;
  u64 launches_ = 0;
  std::size_t launch_span_ = static_cast<std::size_t>(-1);
  std::size_t wait_span_ = static_cast<std::size_t>(-1);
};

}  // namespace uparc::manager
