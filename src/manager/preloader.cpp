#include "manager/preloader.hpp"

#include "bitstream/header.hpp"
#include "obs/trace.hpp"

namespace uparc::manager {

Preloader::Preloader(sim::Simulation& sim, std::string name, MicroBlaze& manager,
                     mem::Bram& bram)
    : Module(sim, std::move(name)), manager_(manager), bram_(bram) {
  sim_.topology().declare_state_ref(this, &bram_, "bitstream BRAM");
}

Status Preloader::store_impl(bool compressed, WordsView payload, u64 extra_cycles,
                             i64 cycles_override, std::function<void()> done) {
  if (payload.size() > BramLayout::kWordCountMask) {
    return make_error("payload too large for the mode word's length field",
                      ErrorCause::kCapacity);
  }
  if (1 + payload.size() > bram_.size_words()) {
    return make_error("payload does not fit the bitstream BRAM (" +
                          std::to_string((1 + payload.size()) * 4) + " > " +
                          std::to_string(bram_.size_bytes()) + " bytes)",
                      ErrorCause::kCapacity);
  }
  std::size_t copied = payload.size();
  if (truncate_tap_) {
    copied = std::min(truncate_tap_(payload.size()), payload.size());
    if (copied < payload.size()) {
      stats().add("truncated_preloads");
      metrics().counter(name() + ".truncated").add();
    }
  }
  last_complete_ = copied == payload.size();
  // The header always advertises the full length — a truncated copy leaves
  // the tail stale, exactly like a torn read from storage.
  bram_.write_word(0, BramLayout::make_header(compressed, static_cast<u32>(payload.size())));
  bram_.load_words(payload.first(copied), 1);

  const u64 cycles =
      cycles_override >= 0
          ? extra_cycles + static_cast<u64>(cycles_override)
          : extra_cycles + static_cast<u64>(copied + 1) * manager_.costs().copy_loop_word;
  last_duration_ = manager_.cycles(cycles);
  ++preloads_;
  // Post-truncation accounting reports what actually landed; the advertised
  // length is tracked separately so a torn copy shows up as the gap between
  // .requested_words and .words.
  stats().add("words_preloaded", static_cast<double>(copied + 1));
  metrics().counter(name() + ".preloads").add();
  metrics().counter(name() + ".words").add(static_cast<double>(copied + 1));
  metrics().counter(name() + ".requested_words").add(static_cast<double>(payload.size() + 1));
  metrics().histogram(name() + ".cycles").observe(static_cast<double>(cycles));
  metrics().meter(name() + ".bytes").add(static_cast<double>((copied + 1) * 4), sim_.now());

  // The DMA burst into BRAM port A is one measured span: opened here,
  // closed when the manager's copy loop lands.
  obs::SpanId span = obs::kNoSpan;
  if (obs::Tracer* tr = tracer()) {
    span = tr->begin("preload.dma", "preload");
    tr->arg(span, "words", static_cast<double>(payload.size() + 1));
    tr->arg(span, "copied_words", static_cast<double>(copied + 1));
    tr->arg(span, "compressed", compressed);
    tr->arg(span, "cached", cycles_override >= 0);
    tr->arg(span, "manager_cycles", static_cast<double>(cycles));
  }
  manager_.execute(cycles, [this, span, done = std::move(done)]() mutable {
    if (obs::Tracer* tr = tracer()) tr->end(span);
    done();
  });
  return Status::success();
}

Status Preloader::store(bool compressed, WordsView payload, u64 extra_cycles,
                        std::function<void()> done) {
  return store_impl(compressed, payload, extra_cycles, -1, std::move(done));
}

Status Preloader::preload_cached(bool compressed, WordsView payload, u64 copy_cycles,
                                 std::function<void()> done) {
  Status st = store_impl(compressed, payload, 0, static_cast<i64>(copy_cycles),
                         std::move(done));
  if (st.ok()) {
    stats().add("cached_preloads");
    metrics().counter(name() + ".cached_preloads").add();
  }
  return st;
}

Status Preloader::preload_file(BytesView bit_file, std::function<void()> done) {
  auto parsed = bits::parse_header(bit_file);
  if (!parsed.ok()) return parsed.error();
  const auto& ph = parsed.value();
  if (ph.header.body_bytes % 4 != 0) return make_error("bitstream body not word aligned");
  Words body = bytes_to_words(bit_file.subspan(ph.body_offset, ph.header.body_bytes));
  return store(false, body, manager_.costs().header_parse, std::move(done));
}

Status Preloader::preload_body(WordsView body, std::function<void()> done) {
  return store(false, body, 0, std::move(done));
}

Status Preloader::preload_compressed(BytesView container, std::function<void()> done) {
  return store(true, bytes_to_words(container), 0, std::move(done));
}

}  // namespace uparc::manager
