#include "manager/control.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace uparc::manager {

ReconfigControl::ReconfigControl(sim::Simulation& sim, std::string name, MicroBlaze& manager,
                                 power::Rail* rail, WaitMode mode, double burst_mw,
                                 double wait_mw)
    : Module(sim, std::move(name)), manager_(manager), mode_(mode) {
  if (rail != nullptr) {
    burst_power_ = std::make_unique<power::ConstantPower>(*rail, this->name() + ".ctrl_burst",
                                                          burst_mw);
    wait_power_ =
        std::make_unique<power::ConstantPower>(*rail, this->name() + ".active_wait", wait_mw);
  }
}

TimePs ReconfigControl::control_overhead() const {
  return manager_.cycles(manager_.costs().control_launch);
}

void ReconfigControl::launch(std::function<void(std::function<void()> finish)> start,
                             std::function<void()> done) {
  if (busy_) throw std::logic_error("ReconfigControl: launch while busy: " + name());
  busy_ = true;
  ++launches_;
  metrics().counter(name() + ".launches").add();
  if (obs::Tracer* tr = tracer()) {
    launch_span_ = tr->begin("control.launch", "control");
    tr->arg(launch_span_, "mode",
            mode_ == WaitMode::kActiveWait ? "active_wait" : "interrupt");
  }
  if (burst_power_) burst_power_->set_active(true);

  manager_.execute(manager_.costs().control_launch, [this, start = std::move(start),
                                                     done = std::move(done)]() mutable {
    if (burst_power_) burst_power_->set_active(false);
    if (mode_ == WaitMode::kActiveWait && wait_power_) wait_power_->set_active(true);
    if (obs::Tracer* tr = tracer()) wait_span_ = tr->begin("control.wait", "control");

    auto finish = [this, done = std::move(done)]() mutable {
      const u64 tail_cycles = mode_ == WaitMode::kActiveWait
                                  ? manager_.costs().poll_iteration
                                  : manager_.costs().irq_entry;
      if (wait_power_) wait_power_->set_active(false);
      if (obs::Tracer* tr = tracer()) tr->end(wait_span_);
      manager_.execute(tail_cycles, [this, done = std::move(done)]() mutable {
        busy_ = false;
        if (obs::Tracer* tr = tracer()) tr->end(launch_span_);
        done();
      });
    };
    start(std::move(finish));
  });
}

}  // namespace uparc::manager
