#include "manager/adaptation.hpp"

#include <cmath>

namespace uparc::manager {

FrequencyAdapter::FrequencyAdapter(clocking::DyCloGen& dyclogen, Frequency f_limit,
                                   TimePs overhead, WaitMode wait_mode, double wait_mw)
    : dyclogen_(dyclogen),
      f_limit_(f_limit),
      overhead_(overhead),
      wait_mode_(wait_mode),
      wait_mw_(wait_mw) {}

TimePs FrequencyAdapter::predict_time(u64 payload_bytes, Frequency f) const {
  const double transfer_s = static_cast<double>(payload_bytes) / (4.0 * f.in_hz());
  return overhead_ + TimePs::from_seconds(transfer_s);
}

double FrequencyAdapter::predict_mw(Frequency f) const {
  double mw = power::reconfig_datapath_mw(f);
  if (wait_mode_ == WaitMode::kActiveWait) mw += wait_mw_;
  return mw;
}

double FrequencyAdapter::predict_uj(u64 payload_bytes, Frequency f) const {
  return predict_mw(f) * predict_time(payload_bytes, f).seconds() * 1e3;
}

std::optional<Frequency> FrequencyAdapter::min_frequency_for(u64 payload_bytes,
                                                             TimePs deadline) const {
  if (deadline <= overhead_) return std::nullopt;
  const double budget_s = (deadline - overhead_).seconds();
  const double f_hz = static_cast<double>(payload_bytes) / (4.0 * budget_s);
  if (f_hz > f_limit_.in_hz()) return std::nullopt;
  return Frequency(f_hz);
}

std::optional<AdaptationPlan> FrequencyAdapter::plan(FrequencyPolicy policy, u64 payload_bytes,
                                                     TimePs deadline) const {
  clocking::MdConstraints c;
  c.f_max = f_limit_;
  std::optional<clocking::MdChoice> choice;
  Frequency target = f_limit_;

  switch (policy) {
    case FrequencyPolicy::kMaxPerformance:
      choice = clocking::closest_not_above(dyclogen_.f_in(), f_limit_, c);
      if (choice && predict_time(payload_bytes, choice->f_out) > deadline) return std::nullopt;
      break;

    case FrequencyPolicy::kMinPowerDeadline:
      // §V: "the power-aware solution is to use the lowest possible
      // frequency which meets timing constraints" — lowest synthesizable
      // frequency whose predicted time fits the deadline.
      for (unsigned d = c.min_d; d <= c.max_d; ++d) {
        for (unsigned m = c.min_m; m <= c.max_m; ++m) {
          const Frequency out = dyclogen_.f_in() * static_cast<double>(m) / d;
          if (out > c.f_max) continue;
          if (predict_time(payload_bytes, out) > deadline) continue;
          if (!choice || out < choice->f_out || (out == choice->f_out && d < choice->d)) {
            choice = clocking::MdChoice{m, d, out, 0.0};
          }
        }
      }
      if (choice) target = choice->f_out;
      break;

    case FrequencyPolicy::kMinEnergy: {
      // Explicit argmin of predicted energy over deadline-meeting grid
      // points. Under the calibrated (sub-linear) power curve this lands at
      // high frequency even for an interrupt-driven manager; with an
      // active-wait manager the preference for speed is even stronger.
      double best_uj = 0.0;
      for (unsigned d = c.min_d; d <= c.max_d; ++d) {
        for (unsigned m = c.min_m; m <= c.max_m; ++m) {
          const Frequency out = dyclogen_.f_in() * static_cast<double>(m) / d;
          if (out > c.f_max) continue;
          if (predict_time(payload_bytes, out) > deadline) continue;
          const double uj = predict_uj(payload_bytes, out);
          if (!choice || uj < best_uj) {
            choice = clocking::MdChoice{m, d, out, 0.0};
            best_uj = uj;
          }
        }
      }
      if (choice) target = choice->f_out;
      break;
    }
  }
  if (!choice) return std::nullopt;

  AdaptationPlan plan_out;
  plan_out.target = target;
  plan_out.choice = *choice;
  plan_out.predicted_time = predict_time(payload_bytes, choice->f_out);
  plan_out.predicted_mw = predict_mw(choice->f_out);
  plan_out.predicted_uj = predict_uj(payload_bytes, choice->f_out);
  return plan_out;
}

std::optional<AdaptationPlan> FrequencyAdapter::apply(FrequencyPolicy policy,
                                                      u64 payload_bytes, TimePs deadline,
                                                      std::function<void()> done) {
  auto p = plan(policy, payload_bytes, deadline);
  if (!p) return std::nullopt;
  auto programmed = dyclogen_.request_frequency(clocking::ClockId::kReconfig, p->choice.f_out,
                                                std::move(done));
  if (!programmed) return std::nullopt;
  p->choice = *programmed;
  return p;
}

}  // namespace uparc::manager
