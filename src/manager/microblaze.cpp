#include "manager/microblaze.hpp"

namespace uparc::manager {

MicroBlaze::MicroBlaze(sim::Simulation& sim, std::string name, Frequency f,
                       MicroBlazeCosts costs)
    : Module(sim, std::move(name)), freq_(f), costs_(costs) {}

void MicroBlaze::execute(u64 n, std::function<void()> done) {
  const TimePs t = cycles(n);
  busy_ += t;
  stats().add("cycles", static_cast<double>(n));
  sim_.schedule_in(t, std::move(done));
}

}  // namespace uparc::manager
