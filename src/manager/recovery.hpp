// RecoveryManager — watchdogged, bounded-retry reconfiguration (Manager
// task, robustness extension).
//
// Wraps UPaRC's stage/reconfigure sequence with:
//   * a cycle-budget watchdog: each attempt gets a time budget derived from
//     the expected streaming cycles at the current CLK_2 frequency; when it
//     expires the watchdog aborts UReC (or synthesizes a failure when the
//     stall is outside UReC, e.g. a relock that never completes), so no
//     fault can hang the control path;
//   * failure classification via the ErrorCause taxonomy, mapped to bounded
//     recovery actions: re-preload (data-path corruption), DCM relock
//     (lost/failed lock), frequency step-down (repeated or timing-flavored
//     failures), codec fallback (decompressor errors);
//   * cost accounting: total and recovery-only energy through the power
//     rail, attempt history with per-attempt cause/action/frequency.
//
// The total number of results (first attempt + recoveries) is capped by
// RecoveryPolicy::max_attempts, so recovery always terminates.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/uparc.hpp"

namespace uparc::manager {

enum class RecoveryAction {
  kNone,              ///< success — nothing to recover
  kRepreload,         ///< re-copy the payload into the BRAM and retry
  kRelock,            ///< re-program the CLK_2 DCM and retry once locked
  kFrequencyStepDown, ///< retune CLK_2 lower, re-preload, retry
  kCodecFallback,     ///< switch to the fallback codec, re-stage, retry
  kGiveUp,            ///< unrecoverable cause or attempt budget exhausted
};

[[nodiscard]] constexpr const char* to_string(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::kNone: return "none";
    case RecoveryAction::kRepreload: return "repreload";
    case RecoveryAction::kRelock: return "relock";
    case RecoveryAction::kFrequencyStepDown: return "step_down";
    case RecoveryAction::kCodecFallback: return "codec_fallback";
    case RecoveryAction::kGiveUp: return "give_up";
  }
  return "unknown";
}

struct RecoveryPolicy {
  /// Maximum results tolerated (first attempt included) before giving up.
  unsigned max_attempts = 4;
  /// Watchdog budget = slack x expected streaming time at the current CLK_2
  /// frequency (one word per cycle), floored below.
  double watchdog_slack = 4.0;
  TimePs watchdog_floor = TimePs::from_us(200);
  /// CLK_2 multiplier applied by kFrequencyStepDown, floored at min_frequency.
  double step_down_factor = 0.5;
  Frequency min_frequency = Frequency::mhz(50);
  /// Codec installed by kCodecFallback (simple, streaming-capable decoder).
  compress::CodecId fallback_codec = compress::CodecId::kRle;
  /// Deterministic backoff inserted before each recovery action: the n-th
  /// retry waits cause_weight x backoff_base x backoff_factor^(n-1), capped
  /// at backoff_cap and at the attempt's own cycle budget (a wait longer
  /// than the watchdog budget would be indistinguishable from a hang).
  /// Zero base disables backoff entirely (PR-1 behaviour).
  TimePs backoff_base = TimePs::from_us(20);
  double backoff_factor = 2.0;
  TimePs backoff_cap = TimePs::from_us(2000);
};

/// Cause-class weight for the retry backoff: clock faults need the DCM's
/// analog loop to settle (longest), stalls suggest contention worth real
/// spacing, data-path corruption is transient and retries cheaply.
[[nodiscard]] constexpr double backoff_weight(ErrorCause cause) {
  switch (cause) {
    case ErrorCause::kClockUnlocked: return 2.0;
    case ErrorCause::kTimeout:
    case ErrorCause::kStalled: return 1.5;
    default: return 1.0;
  }
}

struct AttemptRecord {
  unsigned attempt = 0;          ///< 1-based
  ctrl::ReconfigResult result;
  RecoveryAction action = RecoveryAction::kNone;  ///< taken *after* this result
  Frequency frequency;           ///< CLK_2 frequency during the attempt
};

struct RecoveryOutcome {
  bool success = false;
  unsigned attempts = 0;
  u64 watchdog_fires = 0;
  u64 backoffs = 0;                 ///< retries that waited before acting
  TimePs backoff_total{};           ///< summed deterministic retry delay
  std::vector<AttemptRecord> history;
  ctrl::ReconfigResult final_result;
  TimePs start{};
  TimePs end{};
  double energy_uj = 0.0;           ///< whole sequence (rail present)
  double recovery_energy_uj = 0.0;  ///< spent after the first attempt ended
};

class RecoveryManager : public sim::Module {
 public:
  /// `rail` may be null (no energy accounting).
  RecoveryManager(sim::Simulation& sim, std::string name, core::Uparc& uparc,
                  power::Rail* rail = nullptr, RecoveryPolicy policy = {});

  /// Stages `bs` and reconfigures under the watchdog with bounded retries.
  /// `done` receives the outcome when the sequence ends (success or
  /// give-up). Throws if a sequence is already in flight.
  void run(const bits::PartialBitstream& bs,
           std::function<void(const RecoveryOutcome&)> done);

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] const RecoveryPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] RecoveryPolicy& policy() noexcept { return policy_; }

 private:
  void begin_attempt();
  void restage_then_attempt();
  void arm_watchdog(TimePs budget);
  void on_watchdog();
  void on_result(const ctrl::ReconfigResult& r);
  void perform(RecoveryAction action);
  void finish(const ctrl::ReconfigResult& last);
  [[nodiscard]] RecoveryAction classify(const ctrl::ReconfigResult& r) const;
  [[nodiscard]] TimePs attempt_budget() const;
  [[nodiscard]] TimePs relock_budget() const;
  [[nodiscard]] TimePs backoff_delay(ErrorCause cause, unsigned retry) const;
  void perform_after_backoff(RecoveryAction action, ErrorCause cause);

  core::Uparc& uparc_;
  power::Rail* rail_;
  RecoveryPolicy policy_;

  bits::PartialBitstream payload_;
  std::function<void(const RecoveryOutcome&)> done_;
  RecoveryOutcome outcome_;
  Frequency attempt_freq_;
  TimePs first_attempt_end_{};
  ErrorCause last_cause_ = ErrorCause::kNone;
  unsigned attempt_ = 0;
  unsigned action_token_ = 0;
  unsigned backoff_token_ = 0;
  u64 watchdog_epoch_ = 0;
  bool busy_ = false;
  std::size_t run_span_ = static_cast<std::size_t>(-1);
  std::size_t attempt_span_ = static_cast<std::size_t>(-1);
};

}  // namespace uparc::manager
