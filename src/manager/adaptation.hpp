// Frequency adaptation (Manager task 3, paper §III-A-3): analyze run-time
// constraints and pick the reconfiguration frequency, then drive DyCloGen.
//
// Policies reflect §V's analysis:
//  * kMaxPerformance     — highest reliable frequency (fastest swap).
//  * kMinPowerDeadline   — "the power-aware solution is to use the lowest
//                          possible frequency which meets timing constraints".
//  * kMinEnergy          — minimize predicted energy: with an active-wait
//                          manager that is the highest frequency (the wait
//                          term dominates); with an interrupt manager every
//                          frequency costs ~the same energy, so the lowest
//                          deadline-meeting frequency wins.
#pragma once

#include <optional>

#include "clocking/dyclogen.hpp"
#include "manager/control.hpp"
#include "power/calibration.hpp"

namespace uparc::manager {

enum class FrequencyPolicy { kMaxPerformance, kMinPowerDeadline, kMinEnergy };

struct AdaptationPlan {
  Frequency target;          ///< frequency the policy asked for
  clocking::MdChoice choice; ///< what DyCloGen can synthesize
  TimePs predicted_time;     ///< overhead + transfer at choice.f_out
  double predicted_mw = 0.0; ///< rail draw during the reconfiguration
  double predicted_uj = 0.0; ///< energy over the reconfiguration
};

class FrequencyAdapter {
 public:
  /// `f_limit` is the highest reliable reconfiguration frequency (from the
  /// timing model); `overhead` the constant control time (Fig. 5);
  /// `wait_mw` the manager implementation's active-wait draw.
  FrequencyAdapter(clocking::DyCloGen& dyclogen, Frequency f_limit, TimePs overhead,
                   WaitMode wait_mode = WaitMode::kActiveWait,
                   double wait_mw = power::kManagerActiveWaitMw);

  /// Predicted uncompressed reconfiguration time at frequency `f`.
  [[nodiscard]] TimePs predict_time(u64 payload_bytes, Frequency f) const;
  /// Predicted rail draw during reconfiguration at `f` (calibrated model).
  [[nodiscard]] double predict_mw(Frequency f) const;
  /// Predicted energy for one reconfiguration at `f`.
  [[nodiscard]] double predict_uj(u64 payload_bytes, Frequency f) const;

  /// Lowest frequency whose predicted time meets `deadline`; nullopt if even
  /// f_limit misses it.
  [[nodiscard]] std::optional<Frequency> min_frequency_for(u64 payload_bytes,
                                                           TimePs deadline) const;

  /// Chooses a frequency per policy and evaluates the plan. Does not touch
  /// hardware. Returns nullopt if the deadline is infeasible.
  [[nodiscard]] std::optional<AdaptationPlan> plan(FrequencyPolicy policy, u64 payload_bytes,
                                                   TimePs deadline) const;

  /// Plans and programs CLK_2 through DyCloGen; `done` fires at relock.
  std::optional<AdaptationPlan> apply(FrequencyPolicy policy, u64 payload_bytes,
                                      TimePs deadline, std::function<void()> done = {});

  [[nodiscard]] Frequency f_limit() const noexcept { return f_limit_; }

 private:
  clocking::DyCloGen& dyclogen_;
  Frequency f_limit_;
  TimePs overhead_;
  WaitMode wait_mode_;
  double wait_mw_;
};

}  // namespace uparc::manager
