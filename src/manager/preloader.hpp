// Bitstream preloading (Manager task 1, paper §III-A-1).
//
// The Manager reads the .bit file from external storage, parses the
// preamble, and fills the bitstream BRAM through port A: the first 32-bit
// word carries the operation mode and payload length (paper Fig. 3),
// followed by the configuration data (raw body words, or a compressed
// container produced offline on a PC).
//
// A preload normally pays the full external-storage copy loop
// (MicroBlazeCosts::copy_loop_word per word, ~50 MB/s at 100 MHz). The
// bitstream cache (cache/bitstream_cache.hpp) can serve the same payload
// from a hot BRAM slot or the DDR2 staging tier instead; those paths enter
// through preload_cached() with the tier's own (much smaller) cycle charge.
#pragma once

#include "bitstream/generator.hpp"
#include "bitstream/writer.hpp"
#include "manager/microblaze.hpp"
#include "mem/bram.hpp"

namespace uparc::manager {

/// Layout of the BRAM contents (paper Fig. 3).
struct BramLayout {
  static constexpr u32 kCompressedFlag = 1u << 31;
  static constexpr u32 kWordCountMask = 0x00FFFFFFu;

  [[nodiscard]] static constexpr u32 make_header(bool compressed, u32 payload_words) {
    return (compressed ? kCompressedFlag : 0u) | (payload_words & kWordCountMask);
  }
  [[nodiscard]] static constexpr bool is_compressed(u32 header) {
    return (header & kCompressedFlag) != 0;
  }
  [[nodiscard]] static constexpr u32 payload_words(u32 header) {
    return header & kWordCountMask;
  }
};

class Preloader : public sim::Module {
 public:
  Preloader(sim::Simulation& sim, std::string name, MicroBlaze& manager, mem::Bram& bram);

  /// Parses a .bit file image and preloads its body uncompressed. Fails if
  /// the body (plus header word) does not fit the BRAM. `done` fires when
  /// the copy completes; the Status reports immediate (pre-copy) errors.
  [[nodiscard]] Status preload_file(BytesView bit_file, std::function<void()> done);

  /// Preloads an already-parsed body uncompressed.
  [[nodiscard]] Status preload_body(WordsView body, std::function<void()> done);

  /// Preloads a compressed container (produced offline). The container is
  /// stored verbatim after the mode word.
  [[nodiscard]] Status preload_compressed(BytesView container, std::function<void()> done);

  /// Cache-served preload: the payload lands in the BRAM window at
  /// `copy_cycles` total manager cost (hot-slot BRAM burst or DDR2 staging
  /// copy) instead of the external-storage copy loop. The truncate tap still
  /// applies — a torn burst from the staging tier is as real as a torn
  /// storage read — but the cache's own copy never goes back to storage.
  [[nodiscard]] Status preload_cached(bool compressed, WordsView payload, u64 copy_cycles,
                                      std::function<void()> done);

  /// Time the last successful preload consumed.
  [[nodiscard]] TimePs last_duration() const noexcept { return last_duration_; }
  [[nodiscard]] u64 preloads() const noexcept { return preloads_; }
  /// Whether the last store copied every payload word (false after a
  /// fault-injected truncation — the BRAM tail is stale).
  [[nodiscard]] bool last_copy_complete() const noexcept { return last_complete_; }

  /// Fault hook: consulted per preload with the full payload word count;
  /// returns how many words actually land in the BRAM. A short count models
  /// a truncated read from storage — the header still advertises the full
  /// length, so UReC streams whatever stale words follow the copied prefix
  /// (the classic torn-file failure).
  using TruncateTap = std::function<std::size_t(std::size_t)>;
  void set_truncate_tap(TruncateTap tap) { truncate_tap_ = std::move(tap); }

 private:
  [[nodiscard]] Status store(bool compressed, WordsView payload, u64 extra_cycles,
                             std::function<void()> done);
  /// Shared store path. When `cycles_override` is non-negative it replaces
  /// the per-word copy-loop charge (cache-served tiers).
  [[nodiscard]] Status store_impl(bool compressed, WordsView payload, u64 extra_cycles,
                                  i64 cycles_override, std::function<void()> done);

  MicroBlaze& manager_;
  mem::Bram& bram_;
  TruncateTap truncate_tap_;
  TimePs last_duration_{};
  u64 preloads_ = 0;
  bool last_complete_ = true;
};

}  // namespace uparc::manager
