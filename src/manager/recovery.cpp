#include "manager/recovery.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace uparc::manager {

RecoveryManager::RecoveryManager(sim::Simulation& sim, std::string name, core::Uparc& uparc,
                                 power::Rail* rail, RecoveryPolicy policy)
    : Module(sim, std::move(name)), uparc_(uparc), rail_(rail), policy_(policy) {}

void RecoveryManager::run(const bits::PartialBitstream& bs,
                          std::function<void(const RecoveryOutcome&)> done) {
  if (busy_) throw std::logic_error("RecoveryManager: run while busy: " + name());
  busy_ = true;
  payload_ = bs;
  done_ = std::move(done);
  outcome_ = RecoveryOutcome{};
  outcome_.start = sim_.now();
  attempt_ = 0;
  last_cause_ = ErrorCause::kNone;
  metrics().counter(name() + ".runs").add();
  if (obs::Tracer* tr = tracer()) {
    run_span_ = tr->begin("recovery.run", "recovery");
    tr->arg(run_span_, "payload_bytes", static_cast<double>(payload_.body.size() * 4));
  }

  Status st = uparc_.stage(payload_);
  if (!st.ok()) {
    ctrl::ReconfigResult r;
    r.error = st.error().message;
    r.cause = st.error().cause;
    r.start = sim_.now();
    r.end = sim_.now();
    outcome_.history.push_back({1, r, RecoveryAction::kGiveUp, attempt_freq_});
    finish(r);
    return;
  }
  begin_attempt();
}

void RecoveryManager::begin_attempt() {
  ++attempt_;
  stats().add("attempts");
  metrics().counter(name() + ".attempts").add();
  attempt_freq_ = uparc_.dyclogen().frequency(clocking::ClockId::kReconfig);
  if (obs::Tracer* tr = tracer()) {
    attempt_span_ = tr->begin("recovery.attempt", "recovery");
    tr->arg(attempt_span_, "attempt", static_cast<double>(attempt_));
    tr->arg(attempt_span_, "clk2_mhz", attempt_freq_.in_mhz());
  }
  arm_watchdog(attempt_budget());
  const unsigned token = attempt_;
  uparc_.reconfigure([this, token](const ctrl::ReconfigResult& r) {
    // A watchdog may have synthesized a failure for this attempt already
    // (e.g. the launch unwound after the synthetic result); drop the stale
    // hardware result in that case.
    if (!busy_ || token != attempt_) return;
    on_result(r);
  });
}

void RecoveryManager::restage_then_attempt() {
  Status st = uparc_.stage(payload_);
  if (!st.ok()) {
    ctrl::ReconfigResult r;
    r.error = "recovery re-stage failed: " + st.error().message;
    r.cause = st.error().cause;
    r.start = sim_.now();
    r.end = sim_.now();
    outcome_.history.push_back(
        {static_cast<unsigned>(outcome_.history.size() + 1), r, RecoveryAction::kGiveUp,
         attempt_freq_});
    finish(r);
    return;
  }
  begin_attempt();
}

TimePs RecoveryManager::attempt_budget() const {
  // The watchdog is armed when the attempt is staged, so the budget covers
  // the preload copy (copy_loop_word manager cycles per word — an upper
  // bound: compressed containers copy fewer words) plus the stream (one
  // word per CLK_2 cycle) plus header margin, scaled by the slack factor.
  const double words = static_cast<double>(payload_.body.size() + 256);
  const Frequency f = uparc_.dyclogen().frequency(clocking::ClockId::kReconfig);
  const manager::MicroBlaze& mb = uparc_.manager();
  const double us_per_word =
      f.period().us() + mb.frequency().period().us() * mb.costs().copy_loop_word;
  const TimePs expected = TimePs::from_us(us_per_word * words * policy_.watchdog_slack);
  // Staging may retune CLK_3 (compressed mode), so allow for relocks too.
  const TimePs budget = expected + 2 * uparc_.dyclogen().lock_time();
  return std::max(budget, policy_.watchdog_floor);
}

TimePs RecoveryManager::relock_budget() const {
  return std::max(policy_.watchdog_floor, 3 * uparc_.dyclogen().lock_time());
}

TimePs RecoveryManager::backoff_delay(ErrorCause cause, unsigned retry) const {
  if (policy_.backoff_base.ps() == 0 || retry == 0) return TimePs{};
  double us = policy_.backoff_base.us() * backoff_weight(cause);
  for (unsigned i = 1; i < retry; ++i) us *= policy_.backoff_factor;
  TimePs delay = TimePs::from_us(us);
  delay = std::min(delay, policy_.backoff_cap);
  // Cycle-budget aware: never wait longer than one attempt is allowed to
  // run — past that point waiting dominates the very budget that bounds a
  // retry, and total recovery latency stops being schedulable.
  return std::min(delay, attempt_budget());
}

void RecoveryManager::perform_after_backoff(RecoveryAction action, ErrorCause cause) {
  // retry index = number of failed results already recorded (1-based for
  // the first retry), so the schedule replays identically run after run.
  const unsigned retry = static_cast<unsigned>(outcome_.history.size());
  const TimePs delay = backoff_delay(cause, retry);
  if (delay.ps() == 0) {
    perform(action);
    return;
  }
  ++outcome_.backoffs;
  outcome_.backoff_total = outcome_.backoff_total + delay;
  stats().add("backoffs");
  metrics().counter(name() + ".backoffs").add();
  metrics().counter(name() + ".backoff_us").add(delay.us());
  obs::SpanId span = obs::kNoSpan;
  if (obs::Tracer* tr = tracer()) {
    span = tr->begin("recovery.backoff", "recovery");
    tr->arg(span, "retry", static_cast<double>(retry));
    tr->arg(span, "cause", to_string(cause));
    tr->arg(span, "delay_us", delay.us());
  }
  const unsigned token = ++backoff_token_;
  sim_.schedule_in(delay, [this, token, action, span] {
    if (obs::Tracer* tr = tracer()) tr->end(span);
    if (!busy_ || token != backoff_token_) return;
    perform(action);
  });
}

void RecoveryManager::arm_watchdog(TimePs budget) {
  const u64 epoch = ++watchdog_epoch_;
  sim_.schedule_in(budget, [this, epoch] {
    if (epoch != watchdog_epoch_ || !busy_) return;
    on_watchdog();
  });
}

void RecoveryManager::on_watchdog() {
  ++outcome_.watchdog_fires;
  stats().add("watchdog_fires");
  metrics().counter(name() + ".watchdog_fires").add();
  if (obs::Tracer* tr = tracer()) tr->instant("recovery.watchdog", "recovery");
  if (uparc_.urec().busy()) {
    // Unwinds through Finish: the pending reconfigure callback delivers a
    // kTimeout result and classification proceeds normally.
    uparc_.urec().abort(ErrorCause::kTimeout, "recovery watchdog: cycle budget exhausted");
    return;
  }
  // Stalled outside UReC — typically a relock that never completed (lock
  // fault) or a supply-gated clock before the first edge.
  ctrl::ReconfigResult r;
  r.error = "recovery watchdog: operation stalled outside UReC";
  r.cause = uparc_.dyclogen().dcm(clocking::ClockId::kReconfig).locked()
                ? ErrorCause::kStalled
                : ErrorCause::kClockUnlocked;
  r.start = sim_.now();
  r.end = sim_.now();
  on_result(r);
}

RecoveryAction RecoveryManager::classify(const ctrl::ReconfigResult& r) const {
  if (r.success) return RecoveryAction::kNone;
  if (outcome_.history.size() + 1 >= policy_.max_attempts) return RecoveryAction::kGiveUp;
  if (!is_recoverable(r.cause)) return RecoveryAction::kGiveUp;
  switch (r.cause) {
    case ErrorCause::kClockUnlocked:
      return RecoveryAction::kRelock;
    case ErrorCause::kTimeout:
    case ErrorCause::kStalled:
      return uparc_.dyclogen().dcm(clocking::ClockId::kReconfig).locked()
                 ? RecoveryAction::kFrequencyStepDown
                 : RecoveryAction::kRelock;
    case ErrorCause::kDecompressor:
      return uparc_.codec() != policy_.fallback_codec ? RecoveryAction::kCodecFallback
                                                      : RecoveryAction::kRepreload;
    default:
      // Data-path flavored failures (CRC, ICAP protocol/abort, no DESYNC,
      // truncation, garbage): re-copy first; a second identical failure
      // suggests timing, so step the frequency down.
      return last_cause_ == r.cause ? RecoveryAction::kFrequencyStepDown
                                    : RecoveryAction::kRepreload;
  }
}

void RecoveryManager::on_result(const ctrl::ReconfigResult& r) {
  ++watchdog_epoch_;  // disarm
  // Invalidate any in-flight action completion (e.g. a relock that resolves
  // after its watchdog already synthesized a failure): letting it land later
  // would disarm the next attempt's watchdog and start an overlapping one.
  ++action_token_;
  if (outcome_.history.empty()) first_attempt_end_ = sim_.now();
  const RecoveryAction action = classify(r);
  outcome_.history.push_back({static_cast<unsigned>(outcome_.history.size() + 1), r, action,
                              attempt_freq_});
  if (action != RecoveryAction::kNone) {
    stats().add(std::string("action_") + to_string(action));
    metrics().counter(name() + ".action." + to_string(action)).add();
  }
  if (!r.success) {
    metrics().counter(name() + ".cause." + to_string(r.cause)).add();
  }
  if (obs::Tracer* tr = tracer()) {
    tr->arg(attempt_span_, "success", r.success);
    if (!r.success) tr->arg(attempt_span_, "cause", to_string(r.cause));
    tr->arg(attempt_span_, "action", to_string(action));
    tr->end(attempt_span_);
  }
  last_cause_ = r.cause;
  if (action == RecoveryAction::kNone || action == RecoveryAction::kGiveUp) {
    finish(r);
    return;
  }
  perform_after_backoff(action, r.cause);
}

void RecoveryManager::perform(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kRepreload:
      restage_then_attempt();
      return;

    case RecoveryAction::kRelock: {
      // Re-program the DCM at the attempt frequency; the relock itself may
      // fail again, so run it under its own watchdog.
      arm_watchdog(relock_budget());
      const unsigned token = ++action_token_;
      uparc_.set_frequency(attempt_freq_, [this, token] {
        if (!busy_ || token != action_token_) return;
        ++watchdog_epoch_;
        begin_attempt();
      });
      return;
    }

    case RecoveryAction::kFrequencyStepDown: {
      const Frequency cur = uparc_.dyclogen().frequency(clocking::ClockId::kReconfig);
      const Frequency next = Frequency::mhz(
          std::max(policy_.min_frequency.in_mhz(), cur.in_mhz() * policy_.step_down_factor));
      arm_watchdog(relock_budget());
      const unsigned token = ++action_token_;
      uparc_.set_frequency(next, [this, token] {
        if (!busy_ || token != action_token_) return;
        ++watchdog_epoch_;
        restage_then_attempt();
      });
      return;
    }

    case RecoveryAction::kCodecFallback: {
      Status st = uparc_.set_codec(policy_.fallback_codec);
      if (!st.ok()) {
        ctrl::ReconfigResult r;
        r.error = "recovery codec fallback failed: " + st.error().message;
        r.cause = st.error().cause;
        r.start = sim_.now();
        r.end = sim_.now();
        finish(r);
        return;
      }
      restage_then_attempt();
      return;
    }

    case RecoveryAction::kNone:
    case RecoveryAction::kGiveUp:
      return;  // handled by on_result
  }
}

void RecoveryManager::finish(const ctrl::ReconfigResult& last) {
  ++watchdog_epoch_;
  ++action_token_;  // a late action completion must not leak into the next run
  outcome_.success = last.success;
  outcome_.final_result = last;
  outcome_.attempts = static_cast<unsigned>(outcome_.history.size());
  outcome_.end = sim_.now();
  if (rail_ != nullptr) {
    outcome_.energy_uj = rail_->energy_uj(outcome_.start, outcome_.end);
    outcome_.recovery_energy_uj =
        outcome_.history.size() > 1 ? rail_->energy_uj(first_attempt_end_, outcome_.end)
                                    : 0.0;
  }
  stats().set("last_attempts", static_cast<double>(outcome_.attempts));
  metrics().counter(name() + (outcome_.success ? ".successes" : ".giveups")).add();
  metrics().histogram(name() + ".attempts_per_run", {1, 2, 3, 4, 6, 8})
      .observe(static_cast<double>(outcome_.attempts));
  if (obs::Tracer* tr = tracer()) {
    tr->end(attempt_span_);  // staging-failure paths never saw on_result
    tr->arg(run_span_, "success", outcome_.success);
    tr->arg(run_span_, "attempts", static_cast<double>(outcome_.attempts));
    tr->arg(run_span_, "watchdog_fires", static_cast<double>(outcome_.watchdog_fires));
    if (outcome_.recovery_energy_uj > 0.0) {
      tr->arg(run_span_, "recovery_energy_uj", outcome_.recovery_energy_uj);
    }
    tr->end(run_span_);
  }
  busy_ = false;
  auto done = std::move(done_);
  done_ = nullptr;
  if (done) done(outcome_);
}

}  // namespace uparc::manager
