// Manager implementation profiles.
//
// The paper implements the Manager's three tasks on a MicroBlaze but notes
// (§III-A) that "they can be handled by three different smaller hardware
// modules to save energy". A profile bundles the cost model and the power
// levels of one implementation; UPaRC is constructed against a profile, and
// bench/ablation_manager_impl quantifies the difference.
#pragma once

#include "manager/microblaze.hpp"
#include "power/calibration.hpp"

namespace uparc::manager {

struct ManagerProfile {
  std::string name = "microblaze";
  Frequency clock = Frequency::mhz(100);
  MicroBlazeCosts costs{};
  /// Rail draw during the control burst (launch) phase.
  double control_burst_mw = power::kManagerControlBurstMw;
  /// Rail draw while actively waiting for Finish.
  double active_wait_mw = power::kManagerActiveWaitMw;
};

/// The paper's measured configuration: MicroBlaze at 100 MHz.
[[nodiscard]] inline ManagerProfile microblaze_profile() { return ManagerProfile{}; }

/// Dedicated small FSMs for preload/control/adaptation (§III-A's
/// energy-saving alternative): single-digit-cycle control, a DMA-grade copy
/// loop, and a draw in the single milliwatts (tens of slices of logic
/// instead of a soft processor).
[[nodiscard]] inline ManagerProfile hardware_fsm_profile() {
  ManagerProfile p;
  p.name = "hardware_fsm";
  p.clock = Frequency::mhz(100);
  p.costs.control_launch = 8;      // Start pulse from a small FSM
  p.costs.copy_loop_word = 1;      // dedicated preload DMA: 1 word/cycle
  p.costs.header_parse = 64;       // hardwired TLV parser
  p.costs.sector_setup = 180;      // storage interface unchanged
  p.costs.irq_entry = 4;
  p.costs.poll_iteration = 1;
  p.control_burst_mw = 6.0;
  p.active_wait_mw = 1.5;
  return p;
}

}  // namespace uparc::manager
