// Paper-point regression tests: every headline number of the paper, asserted
// with tolerances, so a refactor that silently breaks the reproduction fails
// CI. These mirror the benches but as pass/fail checks.
#include <gtest/gtest.h>

#include "compress/registry.hpp"
#include "compress/stats.hpp"
#include "core/system.hpp"

namespace uparc {
namespace {

using namespace uparc::literals;

bits::PartialBitstream paper_bitstream(std::size_t bytes = 216 * 1024 + 512, u64 seed = 1) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  return bits::Generator(cfg).generate();
}

// Same corpus as bench/table1_compression (see bench/bench_util.hpp).
std::vector<bits::PartialBitstream> reference_corpus() {
  std::vector<bits::PartialBitstream> corpus;
  for (unsigned i = 0; i < 3; ++i) {
    bits::GeneratorConfig cfg;
    cfg.target_body_bytes = 96 * 1024;
    cfg.seed = 1 + i;
    cfg.utilization = 0.95;
    cfg.complexity = 0.5;
    corpus.push_back(bits::Generator(cfg).generate());
  }
  return corpus;
}

TEST(PaperPoints, TableI_RatiosWithinTwoPoints) {
  struct Row {
    std::size_t index;
    double paper;
  };
  // Row order of compress::table1_codecs().
  const Row rows[] = {{0, 63.0}, {1, 71.4}, {2, 72.3}, {3, 74.2},
                      {4, 75.6}, {5, 81.2}, {6, 81.9}};
  auto codecs = compress::table1_codecs();
  auto corpus = reference_corpus();

  double prev = -1;
  for (const auto& row : rows) {
    compress::RatioAccumulator acc;
    for (const auto& bs : corpus) {
      acc.add(compress::measure_verified(*codecs[row.index], words_to_bytes(bs.body)));
    }
    EXPECT_NEAR(acc.ratio_percent(), row.paper, 2.0) << codecs[row.index]->name();
    EXPECT_GT(acc.ratio_percent(), prev) << "ordering violated at "
                                         << codecs[row.index]->name();
    prev = acc.ratio_percent();
  }
}

TEST(PaperPoints, TableIII_UPaRC_i_1433MBps) {
  core::System sys;
  auto bs = paper_bitstream(247_KiB, 4);
  (void)sys.set_frequency_blocking(Frequency::mhz(362.5));
  ASSERT_TRUE(sys.stage(bs).ok());
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 1433.0, 15.0);
}

TEST(PaperPoints, TableIII_UPaRC_ii_1008MBps) {
  core::System sys;
  auto bs = paper_bitstream(600_KiB, 3);
  (void)sys.set_frequency_blocking(Frequency::mhz(255));
  ASSERT_TRUE(sys.stage(bs).ok());
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 1008.0, 25.0);
}

TEST(PaperPoints, TableIII_BaselineBandwidths) {
  struct Row {
    const char* kind;
    double paper_mbps;
    double tol;
  };
  const Row rows[] = {
      {"xps_hwicap_cached", 14.5, 1.0}, {"MST_ICAP", 235.0, 15.0},
      {"FlashCAP", 358.0, 10.0},        {"BRAM_HWICAP", 371.0, 10.0},
      {"FaRM", 800.0, 10.0},
  };
  auto bs = paper_bitstream(128_KiB);
  for (const auto& row : rows) {
    core::System sys;
    auto c = sys.make_baseline(row.kind);
    auto r = sys.run_controller_blocking(*c, bs);
    ASSERT_TRUE(r.success) << row.kind << ": " << r.error;
    EXPECT_NEAR(r.bandwidth().mb_per_sec(), row.paper_mbps, row.tol) << row.kind;
  }
}

TEST(PaperPoints, Fig5_EfficiencyAnchors) {
  // 6.5 KB at 362.5 MHz: 78.8% of theoretical; 247 KB: 99%.
  const double theoretical_mbps = 1450.0;
  {
    core::System sys;
    (void)sys.set_frequency_blocking(Frequency::mhz(362.5));
    ASSERT_TRUE(sys.stage(paper_bitstream(6656, 1)).ok());
    auto r = sys.reconfigure_blocking();
    ASSERT_TRUE(r.success);
    EXPECT_NEAR(r.bandwidth().mb_per_sec() / theoretical_mbps, 0.788, 0.03);
  }
  {
    core::System sys;
    (void)sys.set_frequency_blocking(Frequency::mhz(362.5));
    ASSERT_TRUE(sys.stage(paper_bitstream(247_KiB, 1)).ok());
    auto r = sys.reconfigure_blocking();
    ASSERT_TRUE(r.success);
    EXPECT_NEAR(r.bandwidth().mb_per_sec() / theoretical_mbps, 0.99, 0.01);
  }
}

TEST(PaperPoints, Fig7_PowerAndTimeAtEachFrequency) {
  struct Anchor {
    double mhz, mw, us;
  };
  const Anchor anchors[] = {
      {50, 183, 1100}, {100, 259, 550}, {200, 394, 270}, {300, 453, 180}};

  bits::GeneratorConfig gen;
  gen.device = bits::kVirtex6Lx240t;
  gen.target_body_bytes = 216 * 1024 + 512;
  auto bs = bits::Generator(gen).generate();

  for (const auto& a : anchors) {
    core::SystemConfig cfg;
    cfg.uparc.device = bits::kVirtex6Lx240t;
    core::System sys(cfg);
    (void)sys.set_frequency_blocking(Frequency::mhz(a.mhz));
    ASSERT_TRUE(sys.stage(bs).ok());
    auto r = sys.reconfigure_blocking();
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_NEAR(sys.rail()->peak_mw(r.start, r.end), a.mw, 2.0) << a.mhz << " MHz";
    EXPECT_NEAR(r.duration().us(), a.us, a.us * 0.05) << a.mhz << " MHz";
  }
}

TEST(PaperPoints, SecV_EnergyEfficiency45x) {
  auto bs = paper_bitstream();
  const double kb = static_cast<double>(bs.body_bytes()) / 1024.0;

  core::System xps_sys;
  auto xps = xps_sys.make_baseline("xps_hwicap_unopt");
  auto xr = xps_sys.run_controller_blocking(*xps, bs);
  ASSERT_TRUE(xr.success) << xr.error;
  const double xps_uj_kb = xr.energy_uj / kb;
  EXPECT_NEAR(xps_uj_kb, 30.0, 1.5);

  core::System up_sys;
  (void)up_sys.set_frequency_blocking(Frequency::mhz(100));
  ASSERT_TRUE(up_sys.stage(bs).ok());
  auto ur = up_sys.reconfigure_blocking();
  ASSERT_TRUE(ur.success) << ur.error;
  const double uparc_uj_kb = ur.energy_uj / kb;
  EXPECT_NEAR(uparc_uj_kb, 0.66, 0.03);

  EXPECT_NEAR(xps_uj_kb / uparc_uj_kb, 45.0, 4.0);
}

TEST(PaperPoints, SecIV_CompressedCapacity992KB) {
  // 256 KB BRAM handles a ~992 KB bitstream with X-MatchPRO compression.
  core::System sys;
  auto bs = paper_bitstream(992_KiB, 11);
  auto st = sys.stage(bs);
  ASSERT_TRUE(st.ok()) << st.error().message;
  auto r = sys.reconfigure_blocking();
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(bs.frames));
}

TEST(PaperPoints, SecIV_DcmSetting_M29_D8) {
  core::System sys;
  auto md = sys.set_frequency_blocking(Frequency::mhz(362.5));
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(md->m, 29u);
  EXPECT_EQ(md->d, 8u);
}

TEST(PaperPoints, SecIV_V5ReliableV6NotAt362_5) {
  core::TimingModel v5(bits::kVirtex5Sx50t);
  core::TimingModel v6(bits::kVirtex6Lx240t);
  EXPECT_TRUE(v5.is_reliable(Frequency::mhz(362.5)));
  EXPECT_FALSE(v6.is_reliable(Frequency::mhz(362.5)));
}

TEST(PaperPoints, TableIII_SpeedupOverFarm1_8x) {
  core::System farm_sys;
  auto bs = paper_bitstream(128_KiB);
  auto farm = farm_sys.make_baseline("FaRM");
  auto fr = farm_sys.run_controller_blocking(*farm, bs);
  ASSERT_TRUE(fr.success);

  core::System up_sys;
  auto big = paper_bitstream(247_KiB, 4);
  (void)up_sys.set_frequency_blocking(Frequency::mhz(362.5));
  ASSERT_TRUE(up_sys.stage(big).ok());
  auto ur = up_sys.reconfigure_blocking();
  ASSERT_TRUE(ur.success);

  EXPECT_NEAR(ur.bandwidth().mb_per_sec() / fr.bandwidth().mb_per_sec(), 1.8, 0.1);
}

}  // namespace
}  // namespace uparc
