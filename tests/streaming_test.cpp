// Tests for the streaming decoders: word-at-a-time decode must match the
// block codec bit-for-bit under every feeding pattern.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "common/prng.hpp"
#include "compress/registry.hpp"
#include "compress/streaming.hpp"
#include "core/decompressor_unit.hpp"

namespace uparc::compress {
namespace {

using namespace uparc::literals;

Bytes bitstream_bytes(std::size_t kb, u64 seed) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = kb * 1024;
  cfg.seed = seed;
  return words_to_bytes(bits::Generator(cfg).generate().body);
}

/// Feeds container words into a streaming decoder, draining opportunistically
/// every `drain_every` pushes; returns the decoded words.
Words stream_decode(StreamingDecoder& dec, const Words& container_words,
                    unsigned drain_every = 1) {
  Words out;
  unsigned since_drain = 0;
  auto drain = [&] {
    u32 w;
    while (dec.pop_word(w)) out.push_back(w);
  };
  for (u32 word : container_words) {
    dec.push_word(word);
    if (++since_drain >= drain_every) {
      drain();
      since_drain = 0;
    }
  }
  drain();
  return out;
}

class StreamEquivalence : public ::testing::TestWithParam<std::tuple<CodecId, unsigned>> {};

TEST_P(StreamEquivalence, MatchesBlockDecode) {
  const auto [id, drain_every] = GetParam();
  auto codec = make_codec(id);
  const Bytes input = bitstream_bytes(48, 3);
  const Bytes container = codec->compress(input);
  const Words container_words = bytes_to_words(container);

  auto dec = make_streaming_decoder(id);
  ASSERT_NE(dec, nullptr);
  Words out = stream_decode(*dec, container_words, drain_every);

  EXPECT_TRUE(dec->finished());
  EXPECT_FALSE(dec->errored()) << dec->error_message();
  EXPECT_EQ(dec->total_words(), (input.size() + 3) / 4);
  ASSERT_EQ(out.size(), dec->total_words());
  EXPECT_EQ(words_to_bytes(out), input);  // exact content (input is word-aligned)
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, StreamEquivalence,
    ::testing::Combine(::testing::Values(CodecId::kRle, CodecId::kXMatchPro),
                       ::testing::Values(1u, 7u, 1000000u)),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) == CodecId::kRle ? "RLE" : "XMatchPRO";
      return name + "_drain" + std::to_string(std::get<1>(info.param) % 1000);
    });

TEST(Streaming, AvailabilityQuery) {
  EXPECT_TRUE(has_streaming_decoder(CodecId::kRle));
  EXPECT_TRUE(has_streaming_decoder(CodecId::kXMatchPro));
  EXPECT_FALSE(has_streaming_decoder(CodecId::kLzmaLite));
  EXPECT_EQ(make_streaming_decoder(CodecId::kDeflateLite), nullptr);
}

TEST(Streaming, RandomAndAdversarialContents) {
  Prng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Bytes input;
    const std::size_t n = 512 + rng.below(8192);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix zeros (RLI path), escapes, repeats and noise.
      const u64 pick = rng.below(4);
      input.push_back(pick == 0 ? 0 : pick == 1 ? 0xBD : static_cast<u8>(rng.below(16) * 17));
    }
    for (auto id : {CodecId::kRle, CodecId::kXMatchPro}) {
      auto codec = make_codec(id);
      const Words container_words = bytes_to_words(codec->compress(input));
      auto dec = make_streaming_decoder(id);
      Words out = stream_decode(*dec, container_words, 3);
      ASSERT_FALSE(dec->errored()) << dec->error_message();
      // The final word may carry padding; compare byte prefixes.
      Bytes out_bytes = words_to_bytes(out);
      out_bytes.resize(input.size());
      EXPECT_EQ(out_bytes, input) << "codec " << static_cast<int>(id) << " trial " << trial;
    }
  }
}

TEST(Streaming, RejectsWrongCodecHeader) {
  auto rle = make_codec(CodecId::kRle);
  const Words container_words = bytes_to_words(rle->compress(Bytes(100, 7)));
  auto dec = make_streaming_decoder(CodecId::kXMatchPro);
  dec->push_word(container_words[0]);
  dec->push_word(container_words[1]);
  EXPECT_TRUE(dec->errored());
  EXPECT_NE(dec->error_message().find("codec id mismatch"), std::string::npos);
}

TEST(Streaming, TotalWordsUnknownUntilHeader) {
  auto dec = make_streaming_decoder(CodecId::kRle);
  EXPECT_EQ(dec->total_words(), 0u);
  auto rle = make_codec(CodecId::kRle);
  const Words words = bytes_to_words(rle->compress(Bytes(4000, 0)));
  dec->push_word(words[0]);
  dec->push_word(words[1]);  // 8 bytes in: header complete
  EXPECT_EQ(dec->total_words(), 1000u);
}

TEST(StreamingUnit, DecompressorUnitStreamsRealData) {
  sim::Simulation sim;
  sim::Clock clk3(sim, "clk3", Frequency::mhz(126));
  auto xm = make_codec(CodecId::kXMatchPro);
  const Bytes input = bitstream_bytes(32, 5);
  const Words container_words = bytes_to_words(xm->compress(input));
  const Words expected = bytes_to_words(input);

  core::DecompressorUnit unit(sim, "decomp", clk3, xm->hardware(), 16, 0);
  unit.arm_streaming(make_streaming_decoder(CodecId::kXMatchPro), expected.size(),
                     container_words.size());
  EXPECT_TRUE(unit.streaming());

  Words drained;
  std::size_t fed = 0;
  clk3.on_rising([&] {
    while (fed < container_words.size() && unit.can_accept_input()) {
      unit.push_input(container_words[fed++]);
    }
    while (unit.has_output()) drained.push_back(unit.pop_output());
    if (unit.stream_done() || unit.errored()) clk3.disable();
  });
  clk3.enable();
  sim.run();

  ASSERT_FALSE(unit.errored()) << unit.error_message();
  EXPECT_EQ(drained, expected);  // bit-exact through the streaming decoder
}

TEST(StreamingUnit, CorruptStreamSurfacesError) {
  sim::Simulation sim;
  sim::Clock clk3(sim, "clk3", Frequency::mhz(126));
  auto xm = make_codec(CodecId::kXMatchPro);
  const Bytes input = bitstream_bytes(8, 5);
  Words container_words = bytes_to_words(xm->compress(input));
  container_words[0] ^= 0xFF000000u;  // destroy the wire magic

  core::DecompressorUnit unit(sim, "decomp", clk3, xm->hardware(), 16, 0);
  unit.arm_streaming(make_streaming_decoder(CodecId::kXMatchPro),
                     bytes_to_words(input).size(), container_words.size());
  std::size_t fed = 0;
  int cycles = 0;
  clk3.on_rising([&] {
    while (fed < container_words.size() && unit.can_accept_input()) {
      unit.push_input(container_words[fed++]);
    }
    if (unit.errored() || ++cycles > 10000) clk3.disable();
  });
  clk3.enable();
  sim.run();
  EXPECT_TRUE(unit.errored());
}

}  // namespace
}  // namespace uparc::compress
