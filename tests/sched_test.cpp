// Unit tests for the scheduling extension: task sets, offline schedules,
// prefetch analysis, policy comparison.
#include <gtest/gtest.h>

#include "sched/energy_policy.hpp"
#include "sched/router.hpp"

namespace uparc::sched {
namespace {

using namespace uparc::literals;

TaskSet make_pipeline(std::size_t n_activations, std::size_t bitstream_kb = 128,
                      double slack_factor = 4.0) {
  TaskSet set;
  const auto fft = set.add_task({"fft", bitstream_kb * 1024, TimePs::from_us(800)});
  const auto fir = set.add_task({"fir", bitstream_kb * 1024 / 2, TimePs::from_us(500)});
  TimePs t{};
  for (std::size_t i = 0; i < n_activations; ++i) {
    Activation a;
    a.task_index = (i % 2 == 0) ? fft : fir;
    a.ready_time = t;
    // Slack: deadline leaves `slack_factor`x the max-speed reconfig time.
    a.deadline = t + TimePs::from_us(200 * slack_factor);
    set.add_activation(a);
    t += TimePs::from_ms(2);
  }
  return set;
}

TEST(TaskSetTest, ValidationCatchesStructuralErrors) {
  TaskSet ok = make_pipeline(4);
  EXPECT_TRUE(ok.validate().ok());

  TaskSet bad_index;
  (void)bad_index.add_task({"a", 1024, TimePs::from_us(10)});
  bad_index.add_activation({5, TimePs(0), TimePs::from_us(1)});
  EXPECT_FALSE(bad_index.validate().ok());

  TaskSet bad_deadline;
  auto t = bad_deadline.add_task({"a", 1024, TimePs::from_us(10)});
  bad_deadline.add_activation({t, TimePs::from_us(5), TimePs::from_us(5)});
  EXPECT_FALSE(bad_deadline.validate().ok());

  TaskSet unsorted;
  auto u = unsorted.add_task({"a", 1024, TimePs::from_us(10)});
  unsorted.add_activation({u, TimePs::from_us(10), TimePs::from_us(20)});
  unsorted.add_activation({u, TimePs::from_us(5), TimePs::from_us(20)});
  EXPECT_FALSE(unsorted.validate().ok());

  TaskSet no_bits;
  auto n = no_bits.add_task({"a", 0, TimePs::from_us(10)});
  no_bits.add_activation({n, TimePs(0), TimePs::from_us(1)});
  EXPECT_FALSE(no_bits.validate().ok());
}

TEST(SchedulerTest, MaxPerformanceMeetsTightDeadlines) {
  OfflineScheduler sched;
  TaskSet set = make_pipeline(6, 128, 1.2);  // tight
  auto plan = sched.plan(set, manager::FrequencyPolicy::kMaxPerformance);
  EXPECT_TRUE(plan.feasible());
  for (const auto& slot : plan.slots) {
    EXPECT_NEAR(slot.frequency.in_mhz(), 362.5, 1e-6);
    EXPECT_TRUE(slot.deadline_met);
  }
}

TEST(SchedulerTest, MinPowerRunsSlowerButFeasible) {
  OfflineScheduler sched;
  TaskSet set = make_pipeline(6, 128, 6.0);  // generous slack
  auto fast = sched.plan(set, manager::FrequencyPolicy::kMaxPerformance);
  auto slow = sched.plan(set, manager::FrequencyPolicy::kMinPowerDeadline);
  ASSERT_TRUE(fast.feasible());
  ASSERT_TRUE(slow.feasible());
  for (std::size_t i = 0; i < slow.slots.size(); ++i) {
    EXPECT_LE(slow.slots[i].frequency.in_mhz(), fast.slots[i].frequency.in_mhz());
    EXPECT_TRUE(slow.slots[i].deadline_met);
  }
}

TEST(SchedulerTest, ReconfigTimeModelMatchesAdapter) {
  OfflineScheduler sched;
  // 216 KB at 100 MHz: 1.25 us + 216*1024/400e6 s = ~554 us.
  const TimePs t = sched.reconfig_time(216 * 1024, Frequency::mhz(100));
  EXPECT_NEAR(t.us(), 1.25 + 216.0 * 1024 / 400.0, 1.0);
}

TEST(SchedulerTest, RelockChargedOnFrequencyChange) {
  SchedulerParams params;
  params.dcm_relock = TimePs::from_us(50);
  OfflineScheduler sched(params);

  // Same frequency across slots with MaxPerformance: relock only once.
  TaskSet set = make_pipeline(3, 64, 8.0);
  auto plan = sched.plan(set, manager::FrequencyPolicy::kMaxPerformance);
  ASSERT_EQ(plan.slots.size(), 3u);
  EXPECT_GE(plan.slots[0].reconfig_start.us(), 50.0);        // first retune
  EXPECT_EQ(plan.slots[1].reconfig_start.ps(),
            std::max(plan.slots[0].compute_end, set.activations()[1].ready_time).ps());
}

TEST(SchedulerTest, InfeasibleDeadlineFallsBackToMaxAndRecordsMiss) {
  OfflineScheduler sched;
  TaskSet set;
  auto t = set.add_task({"huge", 4 * 1024 * 1024, TimePs::from_us(100)});
  set.add_activation({t, TimePs(0), TimePs::from_us(10)});  // impossible
  auto plan = sched.plan(set, manager::FrequencyPolicy::kMinPowerDeadline);
  EXPECT_EQ(plan.deadline_misses, 1u);
  EXPECT_FALSE(plan.feasible());
  EXPECT_NEAR(plan.slots[0].frequency.in_mhz(), 362.5, 1e-6);  // best effort
}

TEST(PrefetchTest, GenerousGapsHideAllPreloads) {
  OfflineScheduler sched;
  TaskSet set = make_pipeline(6, 64, 4.0);  // 2 ms activation spacing
  auto plan = sched.plan(set, manager::FrequencyPolicy::kMaxPerformance);
  auto report = analyze_prefetch(set, plan);
  ASSERT_EQ(report.slots.size(), 6u);
  // 64 KB at 50 MB/s = 1.3 ms preload; gaps are ~2 ms: all but the first
  // (which has no prior compute to hide under) hide fully.
  for (std::size_t i = 1; i < report.slots.size(); ++i) {
    EXPECT_TRUE(report.slots[i].fully_hidden) << i;
  }
  EXPECT_GT(report.hidden_fraction(), 0.75);
  EXPECT_EQ(report.serial_penalty.ps(), report.total_preload.ps());
}

TEST(PrefetchTest, BackToBackActivationsExposePreloads) {
  TaskSet set;
  auto t = set.add_task({"m", 256 * 1024, TimePs::from_us(10)});  // tiny compute
  TimePs at{};
  for (int i = 0; i < 4; ++i) {
    set.add_activation({t, at, at + TimePs::from_ms(10)});
    at += TimePs::from_us(100);  // activations arrive faster than preloads
  }
  OfflineScheduler sched;
  auto plan = sched.plan(set, manager::FrequencyPolicy::kMaxPerformance);
  auto report = analyze_prefetch(set, plan);
  EXPECT_GT(report.total_exposed.ps(), 0u);
  EXPECT_LT(report.hidden_fraction(), 0.5);
}

TEST(PolicyComparisonTest, ReportsSavingsAndFeasibility) {
  OfflineScheduler sched;
  TaskSet set = make_pipeline(8, 128, 6.0);
  auto cmp = compare_policies(set, sched);
  ASSERT_EQ(cmp.outcomes.size(), 3u);

  const PolicyOutcome* best = cmp.best_feasible();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->deadline_misses, 0u);
  EXPECT_GE(cmp.savings_vs_max_percent(), 0.0);
  // kMinEnergy never spends more energy than any other feasible policy.
  const PolicyOutcome* min_e = cmp.find(manager::FrequencyPolicy::kMinEnergy);
  ASSERT_NE(min_e, nullptr);
  for (const auto& o : cmp.outcomes) {
    if (o.deadline_misses == 0) {
      EXPECT_LE(min_e->reconfig_energy_uj, o.reconfig_energy_uj + 1e-9);
    }
  }
}

TEST(PolicyComparisonTest, PowerAwarePolicyCutsPeakPower) {
  // The paper's §V point: with slack, running the reconfiguration clock
  // slower cuts the instantaneous rail draw (thermal / supply headroom),
  // even though it is not the energy optimum.
  OfflineScheduler sched;
  TaskSet set = make_pipeline(8, 128, 6.0);
  auto cmp = compare_policies(set, sched);
  const PolicyOutcome* low = cmp.find(manager::FrequencyPolicy::kMinPowerDeadline);
  const PolicyOutcome* fast = cmp.find(manager::FrequencyPolicy::kMaxPerformance);
  ASSERT_NE(low, nullptr);
  ASSERT_NE(fast, nullptr);
  ASSERT_EQ(low->deadline_misses, 0u);
  EXPECT_LT(low->peak_power_mw, fast->peak_power_mw);
  EXPECT_GT(cmp.power_reduction_vs_max_percent(), 20.0);
}

TEST(PolicyComparisonTest, MinEnergyPrefersHighFrequencyUnderCalibratedCurve) {
  // The measured power curve is sub-linear in frequency (Fig. 7), so energy
  // per reconfiguration *falls* with frequency even without an active-wait
  // manager — kMinEnergy should therefore run fast in both wait modes.
  for (auto mode : {manager::WaitMode::kActiveWait, manager::WaitMode::kInterrupt}) {
    SchedulerParams params;
    params.wait_mode = mode;
    OfflineScheduler sched(params);
    TaskSet set = make_pipeline(4, 128, 6.0);
    auto plan = sched.plan(set, manager::FrequencyPolicy::kMinEnergy);
    ASSERT_TRUE(plan.feasible());
    for (const auto& slot : plan.slots) {
      EXPECT_GT(slot.frequency.in_mhz(), 300.0);
    }
  }
}

region::Floorplan make_floorplan(unsigned regions) {
  region::Floorplan fp(bits::kVirtex5Sx50t);
  for (unsigned r = 0; r < regions; ++r) {
    region::RegionGeometry geom;
    geom.origin = bits::FrameAddress{0, 0, 0, 1 + r * 2, 0};
    geom.frame_count = 128;
    EXPECT_TRUE(fp.add_region("r" + std::to_string(r), geom).ok());
  }
  return fp;
}

void quarantine_region(txn::HealthTracker& health, const std::string& region) {
  while (health.state(region) != txn::HealthState::kQuarantined) {
    health.on_rollback(region);
  }
}

// Regression: the all-regions-quarantined path used to fall through
// silently — the caller saw a null RouteChoice but nothing counted how
// often the fleet was unschedulable. The router now increments a dedicated
// `route.unschedulable` counter.
TEST(RouterTest, AllQuarantinedIncrementsUnschedulableCounter) {
  sim::Simulation sim;
  txn::HealthTracker health(sim, "h");
  obs::Registry metrics;
  Router router(&health, &metrics);
  region::Floorplan fp = make_floorplan(2);

  // Healthy fleet: picks a region, no unschedulable count.
  EXPECT_NE(router.pick(fp, "m0").region, nullptr);
  EXPECT_EQ(metrics.counter_value("route.unschedulable"), 0.0);

  quarantine_region(health, "r0");
  quarantine_region(health, "r1");
  const RouteChoice choice = router.pick(fp, "m0");
  EXPECT_EQ(choice.region, nullptr);
  EXPECT_EQ(metrics.counter_value("route.unschedulable"), 1.0);
  EXPECT_NE(choice.reason.find("quarantined"), std::string::npos);

  // Every null pick counts; a later successful pick does not.
  (void)router.pick(fp, "m0");
  EXPECT_EQ(metrics.counter_value("route.unschedulable"), 2.0);
}

// Regression: a permanently-failed region must never come back as a
// candidate — the guard is explicit in the router, independent of the
// quarantine-expiry arithmetic.
TEST(RouterTest, PermanentlyFailedRegionNeverSelected) {
  sim::Simulation sim;
  txn::HealthTracker health(sim, "h");
  obs::Registry metrics;
  Router router(&health, &metrics);
  region::Floorplan fp = make_floorplan(2);

  health.on_failure("r0");
  ASSERT_TRUE(health.permanently_failed("r0"));

  // r1 is healthy: it must be chosen even though r0 ranks first by name.
  for (int i = 0; i < 3; ++i) {
    const RouteChoice choice = router.pick(fp, "m0");
    ASSERT_NE(choice.region, nullptr);
    EXPECT_EQ(choice.region->name, "r1");
  }

  // With r1 also permanently failed, nothing is ever selected again — even
  // far in the future, past any finite backoff horizon.
  health.on_failure("r1");
  sim.schedule_at(TimePs::from_ms(1e6), [] {});
  sim.run();
  const RouteChoice none = router.pick(fp, "m0");
  EXPECT_EQ(none.region, nullptr);
  EXPECT_GE(metrics.counter_value("route.unschedulable"), 1.0);
}

// A router without a metrics registry must keep working (no counting).
TEST(RouterTest, NullMetricsRegistryIsSafe) {
  sim::Simulation sim;
  txn::HealthTracker health(sim, "h");
  Router router(&health);
  region::Floorplan fp = make_floorplan(1);
  quarantine_region(health, "r0");
  EXPECT_EQ(router.pick(fp, "m0").region, nullptr);
}

}  // namespace
}  // namespace uparc::sched
