// Robustness and determinism: hostile inputs must never crash a model, and
// identical seeds must produce bit-identical simulations.
#include <gtest/gtest.h>

#include "bitstream/parser.hpp"
#include "bitstream/relocate.hpp"
#include "common/prng.hpp"
#include "core/system.hpp"

namespace uparc {
namespace {

using namespace uparc::literals;

// ------------------------------------------------------------- ICAP fuzzing

class IcapFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(IcapFuzz, RandomWordStreamsNeverCrashThePort) {
  sim::Simulation sim;
  icap::ConfigPlane plane(sim, "plane", bits::kVirtex5Sx50t);
  icap::Icap port(sim, "icap", plane);

  Prng rng(GetParam());
  // Mix raw noise with plausible packet fragments so the FSM visits every
  // state, including mid-payload truncations and stray type-2 packets.
  for (int i = 0; i < 20'000 && !port.errored() && !port.done(); ++i) {
    u32 word;
    switch (rng.below(6)) {
      case 0: word = static_cast<u32>(rng.next()); break;
      case 1: word = bits::kSyncWord; break;
      case 2: word = bits::kNoopWord; break;
      case 3:
        word = bits::type1(static_cast<bits::Opcode>(rng.below(3)),
                           static_cast<bits::ConfigReg>(rng.below(13)),
                           static_cast<u32>(rng.below(64)));
        break;
      case 4: word = bits::type2(bits::Opcode::kWrite, static_cast<u32>(rng.below(4096))); break;
      default: word = static_cast<u32>(rng.below(16)); break;
    }
    port.write_word(word);
  }
  // Whatever happened, the port is in a defined state and reset() recovers.
  port.reset();
  EXPECT_EQ(port.state(), icap::IcapState::kPreSync);

  // And a clean bitstream still loads afterwards.
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 8_KiB;
  auto bs = bits::Generator(cfg).generate();
  for (u32 w : bs.body) port.write_word(w);
  EXPECT_TRUE(port.done());
  EXPECT_TRUE(plane.contains(bs.frames));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcapFuzz, ::testing::Range<u64>(100, 112));

// --------------------------------------------------------- parser fuzzing

class ParserFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ParserFuzz, MutatedBodiesParseOrFailCleanly) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 8_KiB;
  cfg.seed = GetParam();
  auto bs = bits::Generator(cfg).generate();

  Prng rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 40; ++trial) {
    Words mutated = bs.body;
    // 1-4 random word mutations anywhere in the body.
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<u32>(rng.next());
    }
    // Must not crash; either parses (possibly with CRC mismatch) or errors.
    auto parsed = bits::parse_body(bits::kVirtex5Sx50t, mutated);
    if (parsed.ok()) {
      // If it parsed, frames are structurally sound.
      for (const auto& frame : parsed.value().frames) {
        EXPECT_EQ(frame.data.size(), 41u);
      }
    } else {
      EXPECT_FALSE(parsed.error().message.empty());
    }
    // Relocation on mutated bodies must also fail cleanly or succeed.
    (void)bits::relocate_body(bits::kVirtex5Sx50t, mutated, bits::FrameAddress{0, 0, 1, 1, 0});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<u64>(200, 208));

// ------------------------------------------------------------- determinism

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  auto run_once = [](u64 seed) {
    core::System sys;
    bits::GeneratorConfig cfg;
    cfg.target_body_bytes = 64_KiB;
    cfg.seed = seed;
    auto bs = bits::Generator(cfg).generate();
    (void)sys.set_frequency_blocking(Frequency::mhz(300));
    EXPECT_TRUE(sys.stage(bs).ok());
    auto r = sys.reconfigure_blocking();
    EXPECT_TRUE(r.success);
    return std::tuple{r.duration().ps(), r.energy_uj, sys.sim().events_executed(),
                      sys.icap().words_consumed()};
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

TEST(Determinism, CompressedModeIsDeterministicToo) {
  auto run_once = [] {
    core::System sys;
    bits::GeneratorConfig cfg;
    cfg.target_body_bytes = 500_KiB;
    cfg.seed = 9;
    auto bs = bits::Generator(cfg).generate();
    EXPECT_TRUE(sys.stage(bs).ok());
    auto r = sys.reconfigure_blocking();
    EXPECT_TRUE(r.success);
    return std::pair{r.duration().ps(), sys.uparc().staged_stored_bytes()};
  };
  EXPECT_EQ(run_once(), run_once());
}

// -------------------------------------------------- UReC hostile BRAM data

TEST(UrecRobustness, GarbageBramContentEndsInErrorNotHang) {
  core::System sys;
  Prng rng(31);
  // Fill the BRAM with garbage under a plausible mode word.
  auto& bram = sys.uparc().bram();
  const u32 words = 4096;
  bram.write_word(0, manager::BramLayout::make_header(false, words));
  for (u32 i = 1; i <= words; ++i) bram.write_word(i, static_cast<u32>(rng.next()));

  bool finished = false;
  sys.uparc().urec().start([&] { finished = true; });
  sys.sim().run();
  EXPECT_TRUE(finished);
  // Either the ICAP flagged a structural error or the stream simply never
  // desynced; both are defined outcomes.
  EXPECT_NE(sys.uparc().urec().state(), core::UrecState::kIdle);
}

TEST(UrecRobustness, CompressedGarbageSurfacesDecoderError) {
  core::System sys;
  auto& bram = sys.uparc().bram();
  // Claim compression, but store noise that is not a valid container.
  const u32 words = 512;
  bram.write_word(0, manager::BramLayout::make_header(true, words));
  Prng rng(77);
  for (u32 i = 1; i <= words; ++i) bram.write_word(i, static_cast<u32>(rng.next()));
  // Arm the decompressor the way UPaRC would for a genuine stream.
  sys.uparc().decompressor().arm_streaming(
      compress::make_streaming_decoder(compress::CodecId::kXMatchPro), 2048, words);
  sys.uparc().dyclogen().clock(clocking::ClockId::kDecompress).enable();

  bool finished = false;
  sys.uparc().urec().start([&] { finished = true; });
  sys.sim().run_until(sys.sim().now() + TimePs::from_ms(5));
  sys.uparc().dyclogen().clock(clocking::ClockId::kDecompress).disable();
  sys.sim().run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(sys.uparc().urec().state(), core::UrecState::kError);
}

// ------------------------------------------------- supply-gated clocking

namespace {
// Drives the simulation until the ICAP has consumed `words` (the stream is
// provably in flight), without overshooting the end of the run.
void run_until_streaming(core::System& sys, u64 words) {
  for (int i = 0; i < 1000 && sys.icap().words_consumed() < words; ++i) {
    sys.sim().run_until(sys.sim().now() + TimePs::from_us(10));
  }
  ASSERT_GE(sys.icap().words_consumed(), words);
}
}  // namespace

TEST(SupplyGate, LockLossStallsTheStreamAndRelockResumesIt) {
  core::System sys;
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 64_KiB;
  auto bs = bits::Generator(cfg).generate();
  ASSERT_TRUE(sys.stage(bs).ok());
  std::optional<ctrl::ReconfigResult> got;
  sys.uparc().reconfigure([&](const ctrl::ReconfigResult& r) { got = r; });
  run_until_streaming(sys, 1000);

  auto& dcm = sys.uparc().dyclogen().dcm(clocking::ClockId::kReconfig);
  ASSERT_TRUE(dcm.locked());
  dcm.drop_lock();
  auto& clk = sys.uparc().dyclogen().clock(clocking::ClockId::kReconfig);
  EXPECT_TRUE(clk.enabled());    // the consumer still wants edges...
  EXPECT_FALSE(clk.running());   // ...but the supply is gated: no stale edges
  const u64 words_at_stall = sys.icap().words_consumed();
  sys.sim().run();  // queue drains with the stream frozen mid-flight
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(sys.icap().words_consumed(), words_at_stall);

  // Re-locking at the same frequency re-supplies CLK_2 and the stream picks
  // up exactly where it stalled.
  (void)sys.uparc().set_frequency(sys.uparc().dyclogen().frequency(clocking::ClockId::kReconfig));
  sys.sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->success);
  EXPECT_GT(sys.icap().words_consumed(), words_at_stall);
}

TEST(UrecRobustness, AbortUnsticksAClockGatedStream) {
  core::System sys;
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 64_KiB;
  auto bs = bits::Generator(cfg).generate();
  ASSERT_TRUE(sys.stage(bs).ok());
  std::optional<ctrl::ReconfigResult> got;
  sys.uparc().reconfigure([&](const ctrl::ReconfigResult& r) { got = r; });
  run_until_streaming(sys, 1000);

  sys.uparc().dyclogen().dcm(clocking::ClockId::kReconfig).drop_lock();
  sys.sim().run();
  ASSERT_FALSE(got.has_value());  // stalled: nothing left to execute

  // What the RecoveryManager's watchdog does: abort the FSM to unwind the
  // control path and deliver a classified failure.
  sys.uparc().urec().abort(ErrorCause::kTimeout, "watchdog: cycle budget exhausted");
  sys.sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->success);
  EXPECT_EQ(got->cause, ErrorCause::kTimeout);
}

}  // namespace
}  // namespace uparc
