// Tests for the schedule executor: the offline planner's predictions must
// hold on the live cycle-accurate system.
#include <gtest/gtest.h>

#include "power/breakdown.hpp"
#include "sched/executor.hpp"

namespace uparc::sched {
namespace {

using namespace uparc::literals;

struct Workload {
  TaskSet set;
  std::vector<bits::PartialBitstream> images;
};

Workload make_workload(unsigned activations, TimePs period, TimePs deadline_offset) {
  Workload w;
  bits::GeneratorConfig g1;
  g1.target_body_bytes = 96_KiB;
  g1.seed = 61;
  bits::GeneratorConfig g2;
  g2.target_body_bytes = 48_KiB;
  g2.seed = 62;
  w.images.push_back(bits::Generator(g1).generate());
  w.images.push_back(bits::Generator(g2).generate());

  const auto a = w.set.add_task(
      {"alpha", w.images[0].body_bytes(), TimePs::from_us(700)});
  const auto b = w.set.add_task(
      {"beta", w.images[1].body_bytes(), TimePs::from_us(400)});
  TimePs t = TimePs::from_ms(1);
  for (unsigned i = 0; i < activations; ++i) {
    w.set.add_activation({i % 2 == 0 ? a : b, t, t + deadline_offset});
    t += period;
  }
  EXPECT_TRUE(w.set.validate().ok());
  return w;
}

// The executor workloads use the hardware-FSM manager (1 word/cycle
// preload) so that preloads hide inside the activation gaps — the planner's
// prefetch assumption (§III-A-1). With the MicroBlaze copy loop the preloads
// of these image sizes would dominate, which sched_test's prefetch analysis
// covers separately.
core::SystemConfig fsm_system() {
  core::SystemConfig cfg;
  cfg.uparc.manager = manager::hardware_fsm_profile();
  return cfg;
}

SchedulerParams fsm_params() {
  SchedulerParams p;
  p.manager_wait_mw = manager::hardware_fsm_profile().active_wait_mw;
  return p;
}

TEST(Executor, MaxPerformancePlanExecutesWithinPredictions) {
  Workload w = make_workload(6, TimePs::from_ms(3), TimePs::from_ms(1));
  OfflineScheduler planner(fsm_params());
  Schedule plan = planner.plan(w.set, manager::FrequencyPolicy::kMaxPerformance);
  ASSERT_TRUE(plan.feasible());

  core::System sys(fsm_system());
  ScheduleExecutor exec(sys, w.images);
  ExecutionReport report = exec.run(w.set, plan);

  ASSERT_TRUE(report.all_succeeded());
  EXPECT_EQ(report.deadline_misses, 0u);
  ASSERT_EQ(report.slots.size(), plan.slots.size());
  for (const auto& slot : report.slots) {
    // The planner's reconfiguration-time model must match the simulated
    // hardware within 5%.
    const double predicted_us =
        (slot.predicted.reconfig_end - slot.predicted.reconfig_start).us();
    EXPECT_NEAR(slot.actual_reconfig_time().us(), predicted_us, predicted_us * 0.05);
    EXPECT_GT(slot.actual_energy_uj, 0.0);
  }
}

TEST(Executor, MinPowerPlanRunsSlowerButMeetsDeadlines) {
  Workload w = make_workload(6, TimePs::from_ms(4), TimePs::from_ms(2.5));
  OfflineScheduler planner(fsm_params());
  Schedule fast_plan = planner.plan(w.set, manager::FrequencyPolicy::kMaxPerformance);
  Schedule slow_plan = planner.plan(w.set, manager::FrequencyPolicy::kMinPowerDeadline);
  ASSERT_TRUE(slow_plan.feasible());

  core::System fast_sys(fsm_system()), slow_sys(fsm_system());
  ExecutionReport fast = ScheduleExecutor(fast_sys, w.images).run(w.set, fast_plan);
  ExecutionReport slow = ScheduleExecutor(slow_sys, w.images).run(w.set, slow_plan);

  ASSERT_TRUE(fast.all_succeeded());
  ASSERT_TRUE(slow.all_succeeded());
  EXPECT_EQ(slow.deadline_misses, 0u);
  for (std::size_t i = 0; i < slow.slots.size(); ++i) {
    EXPECT_GE(slow.slots[i].actual_reconfig_time().ps(),
              fast.slots[i].actual_reconfig_time().ps());
  }
}

TEST(Executor, PredictedEnergyTracksActualEnergy) {
  Workload w = make_workload(4, TimePs::from_ms(3), TimePs::from_ms(1));
  OfflineScheduler planner(fsm_params());
  Schedule plan = planner.plan(w.set, manager::FrequencyPolicy::kMaxPerformance);

  core::System sys(fsm_system());
  ExecutionReport report = ScheduleExecutor(sys, w.images).run(w.set, plan);
  ASSERT_TRUE(report.all_succeeded());
  // Aggregate energy within 15% (the planner ignores relock-tail effects).
  EXPECT_NEAR(report.total_reconfig_energy_uj, plan.total_reconfig_energy_uj,
              plan.total_reconfig_energy_uj * 0.15);
}

TEST(Executor, MismatchedPlanThrows) {
  Workload w = make_workload(4, TimePs::from_ms(3), TimePs::from_ms(1));
  OfflineScheduler planner;
  Schedule plan = planner.plan(w.set, manager::FrequencyPolicy::kMaxPerformance);
  plan.slots.pop_back();
  core::System sys;
  ScheduleExecutor exec(sys, w.images);
  EXPECT_THROW((void)exec.run(w.set, plan), std::invalid_argument);
}

TEST(PowerBreakdown, EstimateScalesWithAreaAndFrequency) {
  power::BlockEstimate small{50, 0.5, power::kBramIcapMwPerMhz};
  power::BlockEstimate big{860, 0.45, power::kBramIcapMwPerMhz};
  const double small_mw = power::estimate_block_mw(small, Frequency::mhz(100));
  const double big_mw = power::estimate_block_mw(big, Frequency::mhz(100));
  EXPECT_GT(big_mw, small_mw);
  EXPECT_NEAR(power::estimate_block_mw(small, Frequency::mhz(200)), 2 * small_mw, 1e-9);
  // The fit: UPaRC's datapath at 100 MHz ~= the calibrated 152 mW.
  EXPECT_NEAR(small_mw, 152.0, 3.0);
}

TEST(PowerBreakdown, ControllerRowsAvailable) {
  std::size_t count = 0;
  const auto* rows = power::controller_power_rows(count);
  ASSERT_GE(count, 5u);
  EXPECT_STREQ(rows[0].name, "UPaRC (UReC+DyCloGen)");
  EXPECT_EQ(rows[0].slices, 50u);
}

}  // namespace
}  // namespace uparc::sched
