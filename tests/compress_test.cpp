// Unit tests for the codec implementations: exact behaviours, containers,
// edge cases. Broad randomized round-trips live in compress_property_test.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "compress/deflate_lite.hpp"
#include "compress/huffman.hpp"
#include "compress/lz77.hpp"
#include "compress/lz78.hpp"
#include "compress/lzma_lite.hpp"
#include "compress/registry.hpp"
#include "compress/rle.hpp"
#include "compress/stats.hpp"
#include "compress/xmatchpro.hpp"

namespace uparc::compress {
namespace {

Bytes ascii(const char* s) { return Bytes(s, s + std::string(s).size()); }

void expect_roundtrip(const Codec& codec, const Bytes& input) {
  Bytes c = codec.compress(input);
  auto d = codec.decompress(c);
  ASSERT_TRUE(d.ok()) << codec.name() << ": " << d.error().message;
  EXPECT_EQ(d.value(), input) << codec.name();
}

TEST(Container, WrapUnwrapRoundTrip) {
  Bytes payload = {1, 2, 3};
  Bytes c = wire::wrap(CodecId::kRle, 1000, payload);
  auto u = wire::unwrap(CodecId::kRle, c);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().original_size, 1000u);
  EXPECT_EQ(u.value().payload.size(), 3u);
}

TEST(Container, RejectsWrongCodec) {
  Bytes c = wire::wrap(CodecId::kRle, 10, {});
  EXPECT_FALSE(wire::unwrap(CodecId::kLz77, c).ok());
  Bytes tiny = {0xC5};
  EXPECT_FALSE(wire::unwrap(CodecId::kRle, tiny).ok());
  c[0] = 0;
  EXPECT_FALSE(wire::unwrap(CodecId::kRle, c).ok());
}

TEST(Rle, CompressesRuns) {
  RleCodec rle;
  Bytes input(1000, 0x00);
  Bytes c = rle.compress(input);
  EXPECT_LT(c.size(), 40u);  // ~4 runs of 255 + container
  expect_roundtrip(rle, input);
}

TEST(Rle, HandlesEscapeByte) {
  RleCodec rle;
  Bytes input = {RleCodec::kEscape, RleCodec::kEscape, 0x01, RleCodec::kEscape};
  expect_roundtrip(rle, input);
  Bytes runs(10, RleCodec::kEscape);
  expect_roundtrip(rle, runs);
}

TEST(Rle, EmptyAndSingleByte) {
  RleCodec rle;
  expect_roundtrip(rle, {});
  expect_roundtrip(rle, {0x42});
}

TEST(Rle, RejectsTruncatedStream) {
  RleCodec rle;
  Bytes c = rle.compress(Bytes(100, 7));
  c.pop_back();
  EXPECT_FALSE(rle.decompress(c).ok());
}

TEST(Lz77, CompressesRepetition) {
  Lz77Codec lz;
  Bytes input;
  for (int i = 0; i < 100; ++i) {
    input.insert(input.end(), {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'});
  }
  Bytes c = lz.compress(input);
  EXPECT_LT(c.size(), input.size() / 4);
  expect_roundtrip(lz, input);
}

TEST(Lz77, MatchBeyondWindowNotUsed) {
  // Distance > window forces literals for the second copy's start.
  Lz77Codec lz(Lz77Params{.offset_bits = 8, .length_bits = 4, .min_match = 3});  // 256 B window
  Bytes input(600, 0x11);
  input[0] = 0x22;
  input[599] = 0x33;
  expect_roundtrip(lz, input);
}

TEST(Lz77, RejectsBadParamsAndCorruption) {
  EXPECT_THROW(Lz77Codec(Lz77Params{.offset_bits = 2, .length_bits = 4, .min_match = 3}),
               std::invalid_argument);
  Lz77Codec lz;
  Bytes c = lz.compress(ascii("hello hello hello hello"));
  Bytes truncated(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(c.size() - 2));
  EXPECT_FALSE(lz.decompress(truncated).ok());
}

TEST(Lz78, BuildsPhrases) {
  Lz78Codec lz;
  Bytes input = ascii("abababababababababababababab");
  Bytes c = lz.compress(input);
  EXPECT_LT(c.size(), input.size());
  expect_roundtrip(lz, input);
}

TEST(Lz78, EndsExactlyOnKnownPhrase) {
  Lz78Codec lz;
  // "ab ab" — the final "ab" is already a dictionary phrase.
  expect_roundtrip(lz, ascii("abab"));
  expect_roundtrip(lz, ascii("aaaa"));
  expect_roundtrip(lz, ascii("a"));
  expect_roundtrip(lz, {});
}

TEST(Lz78, SmallDictionaryResets) {
  Lz78Codec lz(256);
  Bytes input;
  Prng rng(9);
  for (int i = 0; i < 5000; ++i) input.push_back(static_cast<u8>(rng.below(16)));
  expect_roundtrip(lz, input);
  EXPECT_THROW(Lz78Codec(4), std::invalid_argument);
}

TEST(Huffman, SkewedDistributionCompresses) {
  HuffmanCodec h;
  Bytes input(4000, 0x00);
  for (std::size_t i = 0; i < input.size(); i += 7) input[i] = 0x55;
  Bytes c = h.compress(input);
  EXPECT_LT(c.size(), input.size() / 2);
  expect_roundtrip(h, input);
}

TEST(Huffman, UniformDataDoesNotExplode) {
  HuffmanCodec h;
  Bytes input(4096);
  Prng rng(11);
  for (auto& b : input) b = rng.byte();
  Bytes c = h.compress(input);
  EXPECT_LT(c.size(), input.size() + 200);  // header + ~8 bits/byte
  expect_roundtrip(h, input);
}

TEST(Huffman, SingleSymbolAlphabet) {
  HuffmanCodec h;
  expect_roundtrip(h, Bytes(100, 0x7F));
  expect_roundtrip(h, {});
}

TEST(CanonicalCodeTest, KraftInequalityHolds) {
  std::vector<u64> freqs(256, 0);
  Prng rng(5);
  for (int i = 0; i < 256; ++i) freqs[static_cast<std::size_t>(i)] = rng.below(1000);
  auto lengths = CanonicalCode::build_lengths(freqs);
  double kraft = 0.0;
  for (u8 l : lengths) {
    if (l > 0) kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
  // Non-zero freq symbols must all have codes.
  for (std::size_t s = 0; s < 256; ++s) {
    if (freqs[s] > 0) {
      EXPECT_GT(lengths[s], 0u);
    }
  }
}

TEST(CanonicalCodeTest, RespectsLengthLimit) {
  // Exponential frequencies force deep trees without a limit.
  std::vector<u64> freqs(32, 0);
  u64 f = 1;
  for (std::size_t s = 0; s < 32; ++s) {
    freqs[s] = f;
    f = f * 2 + 1;
  }
  auto lengths = CanonicalCode::build_lengths(freqs, 10);
  for (u8 l : lengths) EXPECT_LE(l, 10u);
}

TEST(XMatch, ZeroRunsFoldViaRli) {
  XMatchProCodec x;
  Bytes input(4096, 0x00);
  Bytes c = x.compress(input);
  // 1024 zero tuples fold into ceil(1024/15) 6-bit RLI records.
  EXPECT_LT(c.size(), 70u);
  expect_roundtrip(x, input);
}

TEST(XMatch, TupleRepetitionFullMatches) {
  XMatchProCodec x;
  Bytes input;
  for (int i = 0; i < 500; ++i) input.insert(input.end(), {0xDE, 0xAD, 0xBE, 0xEF});
  Bytes c = x.compress(input);
  EXPECT_LT(c.size(), input.size() / 6);
  expect_roundtrip(x, input);
}

TEST(XMatch, PartialMatchesShareBytes) {
  XMatchProCodec x;
  Bytes input;
  Prng rng(3);
  // Tuples share 3 of 4 bytes: partial matches dominate.
  for (int i = 0; i < 500; ++i) {
    input.insert(input.end(), {0x12, 0x34, 0x56, rng.byte()});
  }
  Bytes c = x.compress(input);
  // A 3-of-4 partial match costs ~19 bits against 32 literal bits.
  EXPECT_LT(c.size(), input.size() * 2 / 3);
  expect_roundtrip(x, input);
}

TEST(XMatch, UnalignedTailPreserved) {
  XMatchProCodec x;
  expect_roundtrip(x, ascii("abcde"));       // 5 bytes: one tuple + 1
  expect_roundtrip(x, ascii("ab"));          // sub-tuple input
  expect_roundtrip(x, {});
}

TEST(XMatch, DictionaryDepthValidated) {
  EXPECT_THROW(XMatchProCodec(1), std::invalid_argument);
  EXPECT_THROW(XMatchProCodec(4096), std::invalid_argument);
  XMatchProCodec big(64);
  Bytes input;
  Prng rng(8);
  for (int i = 0; i < 2000; ++i) input.push_back(static_cast<u8>(rng.below(8) * 16));
  expect_roundtrip(big, input);
}

TEST(DeflateLite, CompressesStructuredData) {
  DeflateLiteCodec z;
  Bytes input;
  for (int i = 0; i < 200; ++i) {
    input.insert(input.end(),
                 {0x00, 0x00, 0x8F, 0x10, 0x00, 0x00, 0x8F, 0x11, 0xAA, 0x00});
  }
  Bytes c = z.compress(input);
  EXPECT_LT(c.size(), input.size() / 5);
  expect_roundtrip(z, input);
}

TEST(DeflateLite, EmptyAndTinyInputs) {
  DeflateLiteCodec z;
  expect_roundtrip(z, {});
  expect_roundtrip(z, {0x42});
  expect_roundtrip(z, ascii("ab"));
}

TEST(DeflateLite, LongMatchesUseLength258) {
  DeflateLiteCodec z;
  Bytes input(10'000, 0x77);
  Bytes c = z.compress(input);
  EXPECT_LT(c.size(), 400u);
  expect_roundtrip(z, input);
}

TEST(LzmaLite, AdaptiveCoderBeatsNothing) {
  LzmaLiteCodec l;
  Bytes input;
  for (int i = 0; i < 300; ++i) {
    input.insert(input.end(), {0x00, 0x00, 0x8F, 0x10, 0x00, 0x00, 0x8F, 0x11});
  }
  Bytes c = l.compress(input);
  EXPECT_LT(c.size(), input.size() / 5);
  expect_roundtrip(l, input);
}

TEST(LzmaLite, EmptyAndTinyInputs) {
  LzmaLiteCodec l;
  expect_roundtrip(l, {});
  expect_roundtrip(l, {0x01});
  expect_roundtrip(l, ascii("xyz"));
}

TEST(LzmaLite, RepDistanceCapturesStrides) {
  LzmaLiteCodec l;
  // 164-byte strided repetition with point noise — frame-like.
  Bytes unit(164);
  Prng rng(17);
  for (auto& b : unit) b = static_cast<u8>(rng.below(4) * 64);
  Bytes input;
  for (int i = 0; i < 100; ++i) {
    Bytes copy = unit;
    copy[rng.below(copy.size())] = rng.byte();
    input.insert(input.end(), copy.begin(), copy.end());
  }
  Bytes c = l.compress(input);
  EXPECT_LT(c.size(), input.size() / 4);
  expect_roundtrip(l, input);
}

TEST(Registry, ConstructsAllTable1Codecs) {
  auto codecs = table1_codecs();
  ASSERT_EQ(codecs.size(), 7u);
  EXPECT_EQ(codecs[0]->name(), "RLE");
  EXPECT_EQ(codecs[3]->name(), "X-MatchPRO");
  EXPECT_EQ(codecs[6]->name(), "7-zip(lzma)");
}

TEST(Registry, LookupByName) {
  EXPECT_NE(make_codec("Zip"), nullptr);
  EXPECT_NE(make_codec("X-MatchPRO"), nullptr);
  EXPECT_EQ(make_codec("Brotli"), nullptr);
}

TEST(Registry, IdentifiesContainers) {
  XMatchProCodec x;
  Bytes c = x.compress(ascii("some data to compress here"));
  auto codec = codec_for_container(c);
  ASSERT_NE(codec, nullptr);
  EXPECT_EQ(codec->id(), CodecId::kXMatchPro);
  EXPECT_EQ(codec_for_container(Bytes{1, 2, 3}), nullptr);
}

TEST(Stats, RatioConvention) {
  // 4x smaller => 75% ratio in the paper's convention.
  CompressionSample s{1000, 250};
  EXPECT_DOUBLE_EQ(s.ratio_percent(), 75.0);
  EXPECT_DOUBLE_EQ(s.reduction_factor(), 4.0);
}

TEST(Stats, MeasureVerifiedDetectsGoodCodecs) {
  RleCodec rle;
  Bytes input(500, 0xAA);
  auto sample = measure_verified(rle, input);
  EXPECT_EQ(sample.original_bytes, 500u);
  EXPECT_LT(sample.compressed_bytes, 100u);
}

TEST(Stats, AccumulatorWeightsBySize) {
  RatioAccumulator acc;
  acc.add({1000, 500});  // 50%
  acc.add({3000, 600});  // 80%
  EXPECT_NEAR(acc.ratio_percent(), (1.0 - 1100.0 / 4000.0) * 100.0, 1e-9);
  EXPECT_EQ(acc.sample_count(), 2u);
}

TEST(AllCodecs, HardwareProfilesSane) {
  for (const auto& codec : table1_codecs()) {
    auto hw = codec->hardware();
    EXPECT_GT(hw.fmax.in_mhz(), 0.0) << codec->name();
    EXPECT_GT(hw.words_per_cycle, 0.0) << codec->name();
    EXPECT_GT(hw.slices_v5, 0u) << codec->name();
  }
  // Paper Table II: the X-MatchPRO decompressor is 1035/900 slices.
  XMatchProCodec x;
  EXPECT_EQ(x.hardware().slices_v5, 1035u);
  EXPECT_EQ(x.hardware().slices_v6, 900u);
  EXPECT_NEAR(x.hardware().fmax.in_mhz(), 126.0, 1e-9);
}

}  // namespace
}  // namespace uparc::compress
