// Unit tests for the region subsystem: geometry, floorplans, module library,
// region manager.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "region/region_manager.hpp"

namespace uparc::region {
namespace {

using namespace uparc::literals;

bits::PartialBitstream make_bs(std::size_t bytes, u64 seed,
                               bits::FrameAddress start = {0, 0, 0, 10, 0}) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  cfg.start_address = start;
  cfg.utilization = 1.0;  // region tests want deterministic frame coverage
  return bits::Generator(cfg).generate();
}

TEST(Geometry, FramesFollowAutoIncrementOrder) {
  RegionGeometry g{bits::FrameAddress{0, 0, 0, 5, 126}, 4};
  auto frames = g.frames();
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].minor, 126u);
  EXPECT_EQ(frames[1].minor, 127u);
  EXPECT_EQ(frames[2].minor, 0u);
  EXPECT_EQ(frames[2].column, 6u);
}

TEST(Geometry, CoversAndOverlaps) {
  RegionGeometry a{bits::FrameAddress{0, 0, 0, 5, 0}, 100};
  RegionGeometry b{bits::FrameAddress{0, 0, 0, 5, 50}, 100};  // overlaps a
  RegionGeometry c{bits::FrameAddress{0, 0, 1, 5, 0}, 100};   // other row
  EXPECT_TRUE(a.covers(bits::FrameAddress{0, 0, 0, 5, 99}));
  EXPECT_FALSE(a.covers(bits::FrameAddress{0, 0, 0, 6, 0}));
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(FloorplanTest, RejectsOverlapsAndDuplicates) {
  Floorplan fp(bits::kVirtex5Sx50t);
  ASSERT_TRUE(fp.add_region("r0", {bits::FrameAddress{0, 0, 0, 10, 0}, 256}).ok());
  EXPECT_FALSE(fp.add_region("r0", {bits::FrameAddress{0, 0, 5, 10, 0}, 16}).ok());
  EXPECT_FALSE(fp.add_region("r1", {bits::FrameAddress{0, 0, 0, 10, 128}, 256}).ok());
  EXPECT_FALSE(fp.add_region("rz", {bits::FrameAddress{0, 0, 7, 0, 0}, 0}).ok());
  ASSERT_TRUE(fp.add_region("r1", {bits::FrameAddress{0, 0, 1, 10, 0}, 256}).ok());
  EXPECT_EQ(fp.regions().size(), 2u);
  EXPECT_NE(fp.find("r1"), nullptr);
  EXPECT_EQ(fp.find("nope"), nullptr);
  EXPECT_EQ(fp.region_at(bits::FrameAddress{0, 0, 1, 10, 3})->name, "r1");
  EXPECT_EQ(fp.region_at(bits::FrameAddress{1, 1, 1, 1, 1}), nullptr);
}

TEST(FloorplanTest, CheckFitsValidatesSizeAndOrigin) {
  Floorplan fp(bits::kVirtex5Sx50t);
  const bits::FrameAddress origin{0, 0, 0, 20, 0};
  ASSERT_TRUE(fp.add_region("r0", {origin, 300}).ok());
  const Region& r0 = *fp.find("r0");

  auto fits = make_bs(16_KiB, 1, origin);  // ~100 frames
  EXPECT_TRUE(fp.check_fits(r0, fits).ok());

  auto wrong_origin = make_bs(16_KiB, 1, bits::FrameAddress{0, 0, 0, 30, 0});
  EXPECT_FALSE(fp.check_fits(r0, wrong_origin).ok());

  auto too_big = make_bs(64_KiB, 1, origin);  // ~400 frames
  EXPECT_FALSE(fp.check_fits(r0, too_big).ok());
}

TEST(ModuleLibraryTest, StoresCompressedAndRestores) {
  ModuleLibrary lib;
  auto bs = make_bs(32_KiB, 5);
  ASSERT_TRUE(lib.add_module("fft", bs).ok());
  EXPECT_FALSE(lib.add_module("fft", bs).ok());  // duplicate
  EXPECT_TRUE(lib.has("fft"));
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_LT(lib.stored_bytes(), bs.body_bytes() / 2);  // compressed at rest

  auto restored = lib.original("fft");
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_EQ(restored.value().body, bs.body);
  EXPECT_FALSE(lib.original("missing").ok());
}

TEST(ModuleLibraryTest, InstantiateRelocatesToRegion) {
  Floorplan fp(bits::kVirtex5Sx50t);
  const bits::FrameAddress origin{0, 0, 3, 40, 0};
  ASSERT_TRUE(fp.add_region("slot", {origin, 512}).ok());

  ModuleLibrary lib;
  auto bs = make_bs(32_KiB, 5);  // compiled at column 10
  ASSERT_TRUE(lib.add_module("fft", bs).ok());

  auto inst = lib.instantiate("fft", fp, *fp.find("slot"));
  ASSERT_TRUE(inst.ok()) << inst.error().message;
  EXPECT_EQ(inst.value().frames.front().address, origin);
  EXPECT_EQ(inst.value().frames.size(), bs.frames.size());
  // Content preserved.
  for (std::size_t i = 0; i < bs.frames.size(); ++i) {
    EXPECT_EQ(inst.value().frames[i].data, bs.frames[i].data);
  }
}

TEST(ModuleLibraryTest, InstantiateRejectsOversizedModule) {
  Floorplan fp(bits::kVirtex5Sx50t);
  ASSERT_TRUE(fp.add_region("tiny", {bits::FrameAddress{0, 0, 3, 40, 0}, 8}).ok());
  ModuleLibrary lib;
  ASSERT_TRUE(lib.add_module("big", make_bs(32_KiB, 5)).ok());
  EXPECT_FALSE(lib.instantiate("big", fp, *fp.find("tiny")).ok());
}

class RegionManagerFixture : public ::testing::Test {
 protected:
  RegionManagerFixture() {
    Floorplan fp(bits::kVirtex5Sx50t);
    EXPECT_TRUE(fp.add_region("slot_a", {bits::FrameAddress{0, 0, 1, 10, 0}, 512}).ok());
    EXPECT_TRUE(fp.add_region("slot_b", {bits::FrameAddress{0, 0, 2, 10, 0}, 512}).ok());
    EXPECT_TRUE(lib.add_module("fft", make_bs(32_KiB, 5)).ok());
    EXPECT_TRUE(lib.add_module("fir", make_bs(24_KiB, 6)).ok());
    mgr = std::make_unique<RegionManager>(sys.sim(), "region_mgr", std::move(fp), lib,
                                          sys.uparc(), sys.plane());
  }

  LoadResult load_blocking(const std::string& module, const std::string& region) {
    std::optional<LoadResult> got;
    mgr->load(module, region, [&](const LoadResult& r) { got = r; });
    sys.sim().run();
    EXPECT_TRUE(got.has_value());
    return *got;
  }

  core::System sys;
  ModuleLibrary lib;
  std::unique_ptr<RegionManager> mgr;
};

TEST_F(RegionManagerFixture, LoadsModuleIntoRegion) {
  auto r = load_blocking("fft", "slot_a");
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(mgr->occupant("slot_a"), "fft");
  EXPECT_EQ(mgr->loads_completed(), 1u);
  EXPECT_GT(r.reconfig.bandwidth().mb_per_sec(), 100.0);
}

TEST_F(RegionManagerFixture, TwoRegionsHoldTwoModules) {
  ASSERT_TRUE(load_blocking("fft", "slot_a").success);
  ASSERT_TRUE(load_blocking("fir", "slot_b").success);
  EXPECT_EQ(mgr->occupant("slot_a"), "fft");
  EXPECT_EQ(mgr->occupant("slot_b"), "fir");
}

TEST_F(RegionManagerFixture, SwapModuleInPlace) {
  ASSERT_TRUE(load_blocking("fft", "slot_a").success);
  ASSERT_TRUE(load_blocking("fir", "slot_a").success);
  EXPECT_EQ(mgr->occupant("slot_a"), "fir");
  EXPECT_EQ(mgr->floorplan().find("slot_a")->reconfigurations, 2u);
}

TEST_F(RegionManagerFixture, QueuedLoadsRunSequentially) {
  std::vector<std::string> completion_order;
  mgr->load("fft", "slot_a", [&](const LoadResult& r) {
    EXPECT_TRUE(r.success) << r.error;
    completion_order.push_back("fft");
  });
  mgr->load("fir", "slot_b", [&](const LoadResult& r) {
    EXPECT_TRUE(r.success) << r.error;
    completion_order.push_back("fir");
  });
  EXPECT_EQ(mgr->queue_depth(), 1u);  // second is queued behind the first
  sys.sim().run();
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], "fft");
  EXPECT_EQ(completion_order[1], "fir");
  EXPECT_EQ(mgr->loads_completed(), 2u);
}

TEST_F(RegionManagerFixture, ErrorsReportedThroughCallback) {
  auto bad_region = load_blocking("fft", "slot_z");
  EXPECT_FALSE(bad_region.success);
  EXPECT_NE(bad_region.error.find("unknown region"), std::string::npos);

  auto bad_module = load_blocking("ghost", "slot_a");
  EXPECT_FALSE(bad_module.success);
  EXPECT_NE(bad_module.error.find("unknown module"), std::string::npos);
  EXPECT_EQ(mgr->loads_failed(), 2u);
}

TEST_F(RegionManagerFixture, EvictClearsBookkeeping) {
  ASSERT_TRUE(load_blocking("fft", "slot_a").success);
  ASSERT_TRUE(mgr->evict("slot_a").ok());
  EXPECT_EQ(mgr->occupant("slot_a"), "");
  EXPECT_FALSE(mgr->evict("slot_z").ok());
}

}  // namespace
}  // namespace uparc::region
