// Tests for the pre-flight static analysis layer: the bitstream linter
// (property: every generator image lints clean; golden diagnostics per rule
// on corrupted images), the model linter over elaborated System graphs, and
// the Manager's lint_gate.
#include <gtest/gtest.h>

#include "analysis/bitstream_lint.hpp"
#include "analysis/model_lint.hpp"
#include "bitstream/generator.hpp"
#include "bitstream/writer.hpp"
#include "common/units.hpp"
#include "compress/registry.hpp"
#include "core/system.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"
#include "sim/topology.hpp"

namespace uparc {
namespace {

using namespace uparc::literals;
using analysis::BitstreamLintOptions;
using analysis::Location;
using analysis::Report;
using analysis::Severity;

bits::PartialBitstream make_image(std::size_t bytes = 16_KiB, u64 seed = 1,
                                  double complexity = 0.5) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  cfg.complexity = complexity;
  return bits::Generator(cfg).generate();
}

/// Body index of the word following the first `type1(kWrite, reg, 1)`
/// header, i.e. the register's payload word.
std::size_t payload_index(const Words& body, bits::ConfigReg reg) {
  const u32 header = bits::type1(bits::Opcode::kWrite, reg, 1);
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i] == header) return i + 1;
  }
  ADD_FAILURE() << "no type-1 write to reg " << static_cast<u32>(reg);
  return 0;
}

// ---------------------------------------------------------------------------
// Property: generator images lint clean, in every representation.

TEST(BitstreamLint, GeneratorImagesLintCleanAcrossSeedsAndSizes) {
  for (u64 seed : {1ull, 7ull, 42ull}) {
    for (std::size_t kb : {8ull, 64ull}) {
      for (double complexity : {0.1, 0.9}) {
        auto bs = make_image(kb * 1024, seed, complexity);
        Report r = analysis::lint_body(bits::kVirtex5Sx50t, bs.body);
        EXPECT_TRUE(r.empty()) << "seed " << seed << " size " << kb
                               << "KiB:\n" << r.render_text();
      }
    }
  }
}

TEST(BitstreamLint, GeneratedFileLintsClean) {
  auto bs = make_image();
  Report r = analysis::lint_file(bits::kVirtex5Sx50t, bits::to_file(bs));
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(BitstreamLint, ContainersLintCleanForEveryRegistryCodec) {
  auto bs = make_image(8_KiB);
  const Bytes packed = words_to_bytes(bs.body);
  for (auto& codec : compress::table1_codecs()) {
    const Bytes container = codec->compress(packed);
    Report r = analysis::lint_container(bits::kVirtex5Sx50t, container);
    EXPECT_TRUE(r.empty()) << std::string(codec->name()) << ":\n" << r.render_text();
  }
}

TEST(BitstreamLint, RegionWindowOptionAcceptsAndRejects) {
  auto bs = make_image(8_KiB);
  BitstreamLintOptions opts;
  opts.region = region::RegionGeometry{bs.frames.front().address,
                                       static_cast<u32>(bs.frames.size())};
  EXPECT_TRUE(analysis::lint_body(bits::kVirtex5Sx50t, bs.body, opts).empty());

  opts.region->origin.column = 50;  // window elsewhere on the die
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, bs.body, opts);
  EXPECT_TRUE(r.has("bs.far.region-bounds")) << r.render_text();
}

TEST(BitstreamLint, V6ImageLintsCleanOnV6) {
  bits::GeneratorConfig cfg;
  cfg.device = bits::kVirtex6Lx240t;
  cfg.target_body_bytes = 16_KiB;
  auto bs = bits::Generator(cfg).generate();
  EXPECT_TRUE(analysis::lint_body(bits::kVirtex6Lx240t, bs.body).empty());
  EXPECT_TRUE(
      analysis::lint_body(bits::kVirtex5Sx50t, bs.body).has("bs.idcode.mismatch"));
}

// ---------------------------------------------------------------------------
// Golden diagnostics: one corrupted image per rule.

TEST(BitstreamLint, BadSyncNamesRuleAndOffset) {
  auto bs = make_image();
  std::size_t sync = 0;
  while (bs.body[sync] != bits::kSyncWord) ++sync;
  bs.body[sync] ^= 0x1;
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, bs.body);
  const analysis::Diagnostic* d = r.find("bs.preamble.sync");
  ASSERT_NE(d, nullptr) << r.render_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.kind, Location::Kind::kWord);
  EXPECT_EQ(d->location.offset, sync);  // where the SYNC word should be
}

TEST(BitstreamLint, PadGarbageBeforeSyncWarns) {
  auto bs = make_image();
  bs.body[3] = 0x12345678;
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, bs.body);
  const analysis::Diagnostic* d = r.find("bs.preamble.pad");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location.offset, 3u);
}

TEST(BitstreamLint, OrphanType2IsAnError) {
  bits::PacketWriter pw;
  pw.prologue();
  Words body = pw.take();
  const std::size_t at = body.size();
  body.push_back(bits::type2(bits::Opcode::kWrite, 4));
  body.insert(body.end(), 4, 0u);
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, body);
  const analysis::Diagnostic* d = r.find("bs.packet.orphan-type2");
  ASSERT_NE(d, nullptr) << r.render_text();
  EXPECT_EQ(d->location.offset, at);
}

TEST(BitstreamLint, TruncatedPacketNamesRuleAndOffset) {
  auto bs = make_image();
  // Cut the body in the middle of the FDRI payload: the type-2 word count
  // now overruns what is left of the file.
  const std::size_t cut = bs.fdri_offset + bs.fdri_words / 2;
  bs.body.resize(cut);
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, bs.body);
  const analysis::Diagnostic* d = r.find("bs.packet.overrun");
  ASSERT_NE(d, nullptr) << r.render_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.offset, bs.fdri_offset - 1);  // the type-2 header
}

TEST(BitstreamLint, NopWithPayloadCountIsAnError) {
  bits::PacketWriter pw;
  pw.prologue();
  Words body = pw.take();
  body.push_back(bits::type1(bits::Opcode::kNop, bits::ConfigReg::kCmd, 2));
  body.insert(body.end(), 2, 0u);
  EXPECT_TRUE(analysis::lint_body(bits::kVirtex5Sx50t, body).has("bs.packet.nop-count"));
}

TEST(BitstreamLint, ReadPacketIsAnError) {
  bits::PacketWriter pw;
  pw.prologue();
  Words body = pw.take();
  body.push_back(bits::type1(bits::Opcode::kRead, bits::ConfigReg::kStat, 0));
  EXPECT_TRUE(analysis::lint_body(bits::kVirtex5Sx50t, body).has("bs.packet.read"));
}

TEST(BitstreamLint, UnknownRegisterAndCommandAreErrors) {
  bits::PacketWriter pw;
  pw.prologue();
  Words body = pw.take();
  body.push_back(bits::type1(bits::Opcode::kWrite, static_cast<bits::ConfigReg>(20), 1));
  body.push_back(0u);
  body.push_back(bits::type1(bits::Opcode::kWrite, bits::ConfigReg::kCmd, 1));
  body.push_back(25u);  // no such CMD opcode
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, body);
  EXPECT_TRUE(r.has("bs.reg.unknown")) << r.render_text();
  EXPECT_TRUE(r.has("bs.cmd.unknown")) << r.render_text();
}

TEST(BitstreamLint, OutOfBoundsFarNamesRuleAndOffset) {
  auto bs = make_image();
  const std::size_t at = payload_index(bs.body, bits::ConfigReg::kFar);
  bits::FrameAddress bad{7, 0, 0, 0, 0};  // block type 7: outside the device
  bs.body[at] = bad.pack();
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, bs.body);
  const analysis::Diagnostic* d = r.find("bs.far.device-bounds");
  ASSERT_NE(d, nullptr) << r.render_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.offset, at);
}

TEST(BitstreamLint, FdriWithoutWcfgIsAnError) {
  bits::PacketWriter pw;
  pw.prologue();
  pw.write_reg(bits::ConfigReg::kFar, 0);
  pw.write_fdri(Words(41, 0u));
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, pw.take());
  EXPECT_TRUE(r.has("bs.fdri.no-wcfg")) << r.render_text();
}

TEST(BitstreamLint, FdriPartialFrameIsAnError) {
  bits::PacketWriter pw;
  pw.prologue();
  pw.command(bits::Command::kWcfg);
  pw.write_fdri(Words(40, 0u));  // one word short of a V5 frame
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, pw.take());
  EXPECT_TRUE(r.has("bs.fdri.alignment")) << r.render_text();
}

TEST(BitstreamLint, CrcMismatchNamesRuleAndOffset) {
  auto bs = make_image();
  bs.body[bs.fdri_offset + 5] ^= 0x40;  // single-bit payload corruption
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, bs.body);
  const analysis::Diagnostic* d = r.find("bs.crc.mismatch");
  ASSERT_NE(d, nullptr) << r.render_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.offset, payload_index(bs.body, bits::ConfigReg::kCrc));
}

TEST(BitstreamLint, MissingCrcSeverityFollowsOptions) {
  bits::PacketWriter pw;
  pw.prologue();
  pw.command(bits::Command::kRcrc);
  pw.write_reg(bits::ConfigReg::kIdcode, bits::kVirtex5Sx50t.idcode);
  pw.command(bits::Command::kDesync);
  const Words body = pw.take();

  Report strict = analysis::lint_body(bits::kVirtex5Sx50t, body);
  const analysis::Diagnostic* d = strict.find("bs.crc.missing");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);

  BitstreamLintOptions lax;
  lax.require_crc = false;
  Report relaxed = analysis::lint_body(bits::kVirtex5Sx50t, body, lax);
  ASSERT_TRUE(relaxed.has("bs.crc.missing"));
  EXPECT_EQ(relaxed.find("bs.crc.missing")->severity, Severity::kWarning);
  EXPECT_TRUE(relaxed.clean());
}

TEST(BitstreamLint, MissingDesyncIsAnError) {
  bits::ConfigCrc crc;
  bits::PacketWriter pw;
  pw.prologue();
  pw.command(bits::Command::kRcrc);
  crc.reset();
  pw.write_reg(bits::ConfigReg::kIdcode, bits::kVirtex5Sx50t.idcode);
  crc.write(bits::ConfigReg::kIdcode, bits::kVirtex5Sx50t.idcode);
  pw.write_crc(crc.value());
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, pw.take());
  EXPECT_TRUE(r.has("bs.epilogue.desync")) << r.render_text();
}

TEST(BitstreamLint, TrailerGarbageAfterDesyncWarns) {
  auto bs = make_image();
  bs.body.push_back(0xDEADBEEFu);
  Report r = analysis::lint_body(bits::kVirtex5Sx50t, bs.body);
  const analysis::Diagnostic* d = r.find("bs.epilogue.trailer");
  ASSERT_NE(d, nullptr) << r.render_text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location.offset, bs.body.size() - 1);
}

TEST(BitstreamLint, EmptyBodyIsAnError) {
  EXPECT_TRUE(analysis::lint_body(bits::kVirtex5Sx50t, Words{}).has("bs.preamble.sync"));
}

TEST(BitstreamLint, GarbageFileFailsHeaderRule) {
  const Bytes junk(64, 0x5A);
  EXPECT_TRUE(analysis::lint_file(bits::kVirtex5Sx50t, junk).has("bs.file.header"));
}

// ---------------------------------------------------------------------------
// Container (ct.*) rules.

TEST(ContainerLint, TruncatedHeader) {
  const Bytes stub = {0xC5, 0x01, 0x00};
  Report r = analysis::lint_container(bits::kVirtex5Sx50t, stub);
  const analysis::Diagnostic* d = r.find("ct.header.truncated");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->location.kind, Location::Kind::kByte);
}

TEST(ContainerLint, BadMagicNamesRuleAtByteZero) {
  auto bs = make_image(8_KiB);
  Bytes container =
      compress::make_codec(compress::CodecId::kRle)->compress(words_to_bytes(bs.body));
  container[0] = 0x00;
  Report r = analysis::lint_container(bits::kVirtex5Sx50t, container);
  const analysis::Diagnostic* d = r.find("ct.header.magic");
  ASSERT_NE(d, nullptr) << r.render_text();
  EXPECT_EQ(d->location.offset, 0u);
}

TEST(ContainerLint, UnknownCodecIdNamesRuleAtByteOne) {
  auto bs = make_image(8_KiB);
  Bytes container =
      compress::make_codec(compress::CodecId::kRle)->compress(words_to_bytes(bs.body));
  container[1] = 99;
  Report r = analysis::lint_container(bits::kVirtex5Sx50t, container);
  const analysis::Diagnostic* d = r.find("ct.header.codec");
  ASSERT_NE(d, nullptr) << r.render_text();
  EXPECT_EQ(d->location.offset, 1u);
}

TEST(ContainerLint, ZeroDeclaredSizeIsAnError) {
  Bytes stub = {0xC5, 0x01, 0x00, 0x00, 0x00, 0x00};
  EXPECT_TRUE(
      analysis::lint_container(bits::kVirtex5Sx50t, stub).has("ct.header.size"));
}

TEST(ContainerLint, TruncatedPayloadFailsDryDecode) {
  auto bs = make_image(8_KiB);
  Bytes container = compress::make_codec(compress::CodecId::kXMatchPro)
                        ->compress(words_to_bytes(bs.body));
  container.resize(compress::wire::kHeaderBytes + 4);
  Report r = analysis::lint_container(bits::kVirtex5Sx50t, container);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(r.has("ct.payload.decode") || r.has("ct.payload.size"))
      << r.render_text();
}

// ---------------------------------------------------------------------------
// Rendering.

TEST(Diagnostics, TextAndJsonRendering) {
  Report r;
  r.error("bs.crc.mismatch", Location::word(5), "embedded \"CRC\" wrong", "regenerate");
  r.warning("md.fifo.same-domain", Location::module("uparc.decomp"), "same domain");
  const std::string text = r.render_text();
  EXPECT_NE(text.find("error bs.crc.mismatch @ word 5"), std::string::npos) << text;
  EXPECT_NE(text.find("[hint: regenerate]"), std::string::npos);

  const std::string json = r.render_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"rule\": \"bs.crc.mismatch\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"CRC\\\""), std::string::npos);  // quotes escaped
  EXPECT_NE(json.find("\"location\": \"module uparc.decomp\""), std::string::npos);
  EXPECT_EQ(analysis::Report{}.render_json(), "[]\n");
}

// ---------------------------------------------------------------------------
// Model linter.

struct Probe : sim::Module {
  Probe(sim::Simulation& s, std::string n) : Module(s, std::move(n)) {}
  using Module::bind_clock;
  using Module::require_clock;
};

TEST(ModelLint, FreshSystemModelIsClean) {
  core::System sys;
  Report r = analysis::lint_model(sys.sim());
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(ModelLint, SystemTopologyRegistersCoreGraph) {
  core::System sys;
  const sim::Topology& topo = sys.sim().topology();
  EXPECT_FALSE(topo.modules().empty());
  EXPECT_FALSE(topo.clocks().empty());
  // The UReC <-> decompressor crossings are declared as FIFO channels.
  ASSERT_EQ(topo.channels().size(), 2u);
  for (const auto& ch : topo.channels()) {
    EXPECT_TRUE(ch.has_fifo);
    EXPECT_NE(ch.producer_clock, ch.consumer_clock);
  }
}

TEST(ModelLint, UnclockedModuleIsFlagged) {
  sim::Simulation sim;
  Probe p(sim, "orphan");
  p.require_clock();
  Report r = analysis::lint_model(sim);
  const analysis::Diagnostic* d = r.find("md.module.unclocked");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->location.path, "orphan");

  sim::Clock clk(sim, "clk", Frequency::mhz(100));
  p.bind_clock(clk);
  EXPECT_FALSE(analysis::lint_model(sim).has("md.module.unclocked"));
}

TEST(ModelLint, CdcWithoutFifoIsFlaggedAndFifoFixesIt) {
  sim::Simulation sim;
  sim::Clock a(sim, "clk_a", Frequency::mhz(100));
  sim::Clock b(sim, "clk_b", Frequency::mhz(250));
  Probe p(sim, "producer"), c(sim, "consumer");
  p.bind_clock(a);
  c.bind_clock(b);

  sim.topology().declare_channel({&p, &a, &c, &b, "", false});
  Report bare = analysis::lint_model(sim);
  const analysis::Diagnostic* d = bare.find("md.cdc.no-fifo");
  ASSERT_NE(d, nullptr) << bare.render_text();
  EXPECT_EQ(d->severity, Severity::kError);

  sim.topology().declare_channel({&p, &a, &c, &b, "sync_fifo", true});
  Report with = analysis::lint_model(sim);
  EXPECT_EQ(with.count(Severity::kError), 1u);  // only the bare channel
}

TEST(ModelLint, SameDomainFifoWarns) {
  sim::Simulation sim;
  sim::Clock a(sim, "clk_a", Frequency::mhz(100));
  Probe p(sim, "producer"), c(sim, "consumer");
  p.bind_clock(a);
  c.bind_clock(a);
  sim.topology().declare_channel({&p, &a, &c, &a, "pointless", true});
  Report r = analysis::lint_model(sim);
  const analysis::Diagnostic* d = r.find("md.fifo.same-domain");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(ModelLint, FifoWithUnclockedEndpointIsAnError) {
  sim::Simulation sim;
  sim::Clock a(sim, "clk_a", Frequency::mhz(100));
  Probe p(sim, "producer"), c(sim, "consumer");
  p.bind_clock(a);
  sim.topology().declare_channel({&p, &a, &c, nullptr, "half_bound", true});
  EXPECT_TRUE(analysis::lint_model(sim).has("md.fifo.unclocked-endpoint"));
}

TEST(ModelLint, DeadEnGateIsFlagged) {
  sim::Simulation sim;
  sim::Clock clk(sim, "starved", Frequency::mhz(100));
  clk.on_rising([] {});
  clk.set_supplied(false);  // DCM never locked
  clk.enable();             // consumer asserts EN anyway
  Report r = analysis::lint_model(sim);
  const analysis::Diagnostic* d = r.find("md.gate.dead");
  ASSERT_NE(d, nullptr) << r.render_text();
  EXPECT_EQ(d->location.path, "starved");
}

TEST(ModelLint, FreeRunningClockIsFlagged) {
  sim::Simulation sim;
  sim::Clock clk(sim, "idle_burner", Frequency::mhz(100));
  clk.enable();  // supplied by default, zero subscribers
  EXPECT_TRUE(analysis::lint_model(sim).has("md.clock.free-running"));
  clk.disable();
  EXPECT_TRUE(analysis::lint_model(sim).empty());
}

TEST(ModelLint, DestructionDeregistersFromTopology) {
  sim::Simulation sim;
  {
    sim::Clock clk(sim, "clk", Frequency::mhz(100));
    Probe p(sim, "transient");
    p.bind_clock(clk);
    sim.topology().declare_channel({&p, &clk, &p, &clk, "loop", true});
    EXPECT_EQ(sim.topology().modules().size(), 1u);
    EXPECT_EQ(sim.topology().bindings().size(), 1u);
  }
  EXPECT_TRUE(sim.topology().modules().empty());
  EXPECT_TRUE(sim.topology().clocks().empty());
  EXPECT_TRUE(sim.topology().bindings().empty());
  EXPECT_TRUE(sim.topology().channels().empty());
  EXPECT_TRUE(analysis::lint_model(sim).empty());
}

// ---------------------------------------------------------------------------
// The Manager's lint_gate.

TEST(LintGate, AcceptsCleanImage) {
  core::System sys;
  EXPECT_TRUE(sys.stage(make_image()).ok());
}

TEST(LintGate, RejectsBadSyncBeforeStaging) {
  core::System sys;
  auto bs = make_image();
  std::size_t sync = 0;
  while (bs.body[sync] != bits::kSyncWord) ++sync;
  bs.body[sync] ^= 0x1;  // not a pad word, so the offset names this spot
  Status st = sys.stage(bs);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().cause, ErrorCause::kBadInput);
  EXPECT_NE(st.error().message.find("bs.preamble.sync"), std::string::npos)
      << st.error().message;
  EXPECT_NE(st.error().message.find("word " + std::to_string(sync)), std::string::npos);
}

TEST(LintGate, RejectsTruncatedPacket) {
  core::System sys;
  auto bs = make_image();
  bs.body.resize(bs.fdri_offset + bs.fdri_words / 2);
  Status st = sys.stage(bs);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().cause, ErrorCause::kBadInput);
  EXPECT_NE(st.error().message.find("bs.packet.overrun"), std::string::npos);
}

TEST(LintGate, RejectsOutOfBoundsFar) {
  core::System sys;
  auto bs = make_image();
  bs.body[payload_index(bs.body, bits::ConfigReg::kFar)] =
      bits::FrameAddress{7, 0, 0, 0, 0}.pack();
  Status st = sys.stage(bs);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().cause, ErrorCause::kBadInput);
  EXPECT_NE(st.error().message.find("bs.far.device-bounds"), std::string::npos);
}

TEST(LintGate, RejectsCrcMismatch) {
  core::System sys;
  auto bs = make_image();
  bs.body[bs.fdri_offset + 3] ^= 0x4;
  Status st = sys.stage(bs);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().cause, ErrorCause::kBadInput);
  EXPECT_NE(st.error().message.find("bs.crc.mismatch"), std::string::npos);
}

TEST(LintGate, DisabledGateLetsBadImageThroughToRuntime) {
  core::SystemConfig cfg;
  cfg.uparc.lint_gate = false;
  core::System sys(cfg);
  auto bs = make_image();
  bs.body[bs.fdri_offset + 3] ^= 0x4;  // CRC now wrong
  // Staging succeeds (the gate is off); the corruption is only caught at
  // run time, by the ICAP's CRC check.
  ASSERT_TRUE(sys.stage(bs).ok());
  auto r = sys.reconfigure_blocking();
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.cause, ErrorCause::kCrcMismatch);
}

}  // namespace
}  // namespace uparc
