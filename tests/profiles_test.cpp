// Tests for the manager implementation profiles (§III-A).
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace uparc::manager {
namespace {

using namespace uparc::literals;

TEST(Profiles, HardwareFsmIsCheaperEverywhere) {
  const ManagerProfile mb = microblaze_profile();
  const ManagerProfile fsm = hardware_fsm_profile();
  EXPECT_LT(fsm.costs.control_launch, mb.costs.control_launch);
  EXPECT_LT(fsm.costs.copy_loop_word, mb.costs.copy_loop_word);
  EXPECT_LT(fsm.costs.header_parse, mb.costs.header_parse);
  EXPECT_LT(fsm.control_burst_mw, mb.control_burst_mw);
  EXPECT_LT(fsm.active_wait_mw, mb.active_wait_mw);
  EXPECT_EQ(fsm.name, "hardware_fsm");
}

TEST(Profiles, MicroBlazeDefaultsMatchTheCalibration) {
  const ManagerProfile mb = microblaze_profile();
  EXPECT_NEAR(mb.active_wait_mw, power::kManagerActiveWaitMw, 1e-12);
  EXPECT_NEAR(mb.control_burst_mw, power::kManagerControlBurstMw, 1e-12);
  EXPECT_EQ(mb.costs.control_launch, 125u);  // the Fig. 5 1.25 us anchor
  EXPECT_NEAR(mb.clock.in_mhz(), 100.0, 1e-12);
}

TEST(Profiles, FsmSystemPreloadsEightTimesFaster) {
  auto bs = [] {
    bits::GeneratorConfig g;
    g.target_body_bytes = 64_KiB;
    return bits::Generator(g).generate();
  }();

  TimePs durations[2];
  int i = 0;
  for (const auto& profile : {microblaze_profile(), hardware_fsm_profile()}) {
    core::SystemConfig cfg;
    cfg.uparc.manager = profile;
    core::System sys(cfg);
    EXPECT_TRUE(sys.stage(bs).ok());
    sys.sim().run();
    durations[i++] = sys.uparc().preloader().last_duration();
  }
  // 8 cycles/word vs 1 cycle/word.
  EXPECT_NEAR(static_cast<double>(durations[0].ps()) / durations[1].ps(), 8.0, 0.1);
}

TEST(Profiles, FsmSystemReconfiguresWithLowerRailDraw) {
  auto bs = [] {
    bits::GeneratorConfig g;
    g.target_body_bytes = 64_KiB;
    return bits::Generator(g).generate();
  }();

  double peaks[2];
  int i = 0;
  for (const auto& profile : {microblaze_profile(), hardware_fsm_profile()}) {
    core::SystemConfig cfg;
    cfg.uparc.manager = profile;
    core::System sys(cfg);
    (void)sys.set_frequency_blocking(Frequency::mhz(100));
    EXPECT_TRUE(sys.stage(bs).ok());
    auto r = sys.reconfigure_blocking();
    EXPECT_TRUE(r.success) << r.error;
    peaks[i++] = sys.rail()->peak_mw(r.start, r.end);
  }
  // MicroBlaze: datapath + 107 mW wait; FSM: datapath + 1.5 mW.
  EXPECT_NEAR(peaks[0] - peaks[1], power::kManagerActiveWaitMw - 1.5, 2.0);
}

TEST(Profiles, ControlOverheadScalesWithProfile) {
  core::SystemConfig cfg;
  cfg.uparc.manager = hardware_fsm_profile();
  core::System fsm_sys(cfg);
  core::System mb_sys;

  auto bs = [] {
    bits::GeneratorConfig g;
    g.target_body_bytes = 6656;  // small: overhead-dominated
    return bits::Generator(g).generate();
  }();
  (void)mb_sys.set_frequency_blocking(Frequency::mhz(362.5));
  (void)fsm_sys.set_frequency_blocking(Frequency::mhz(362.5));
  EXPECT_TRUE(mb_sys.stage(bs).ok());
  EXPECT_TRUE(fsm_sys.stage(bs).ok());
  auto mb_r = mb_sys.reconfigure_blocking();
  auto fsm_r = fsm_sys.reconfigure_blocking();
  ASSERT_TRUE(mb_r.success && fsm_r.success);
  // The FSM launch overhead (8 cycles vs 125) lifts small-bitstream
  // efficiency: ~1.2 us faster on a ~4.6 us transfer.
  EXPECT_GT(fsm_r.bandwidth().mb_per_sec(), mb_r.bandwidth().mb_per_sec() * 1.15);
}

}  // namespace
}  // namespace uparc::manager
