// Property-based round-trip sweeps: every codec must losslessly restore
// every input — random data, frame-like data, generated bitstreams, and
// adversarial patterns — across sizes and seeds (TEST_P sweeps).
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "common/prng.hpp"
#include "compress/registry.hpp"
#include "compress/stats.hpp"

namespace uparc::compress {
namespace {

struct Case {
  const char* codec;
  const char* shape;
  std::size_t size;
  u64 seed;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << c.codec << "/" << c.shape << "/" << c.size << "/seed" << c.seed;
}

[[nodiscard]] Bytes make_input(const Case& c) {
  Prng rng(c.seed);
  Bytes data;
  data.reserve(c.size);
  const std::string shape = c.shape;
  if (shape == "random") {
    for (std::size_t i = 0; i < c.size; ++i) data.push_back(rng.byte());
  } else if (shape == "zeros") {
    data.assign(c.size, 0);
  } else if (shape == "sparse") {
    data.assign(c.size, 0);
    for (std::size_t i = 0; i < c.size / 16; ++i) data[rng.below(c.size)] = rng.byte();
  } else if (shape == "strided") {
    Bytes unit(164);
    for (auto& b : unit) b = static_cast<u8>(rng.below(8) * 32);
    while (data.size() < c.size) {
      Bytes copy = unit;
      if (rng.chance(0.7)) copy[rng.below(copy.size())] = rng.byte();
      const std::size_t take = std::min(copy.size(), c.size - data.size());
      data.insert(data.end(), copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(take));
    }
  } else if (shape == "text") {
    const char* words[] = {"config ", "frame ", "lut6 ", "route ", "clb ", "bram "};
    while (data.size() < c.size) {
      const char* w = words[rng.below(6)];
      for (const char* p = w; *p && data.size() < c.size; ++p) {
        data.push_back(static_cast<u8>(*p));
      }
    }
  } else if (shape == "bitstream") {
    bits::GeneratorConfig cfg;
    cfg.target_body_bytes = c.size;
    cfg.seed = c.seed;
    cfg.utilization = 0.9;
    cfg.complexity = 0.5;
    auto bs = bits::Generator(cfg).generate();
    data = words_to_bytes(bs.body);
  }
  return data;
}

class RoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(RoundTrip, LosslessAndSelfConsistent) {
  const Case& c = GetParam();
  auto codec = make_codec(c.codec);
  ASSERT_NE(codec, nullptr);
  const Bytes input = make_input(c);

  // measure_verified throws on any round-trip failure.
  auto sample = measure_verified(*codec, input);
  EXPECT_EQ(sample.original_bytes, input.size());
  EXPECT_GT(sample.compressed_bytes, 0u);

  // Decompressing with every *other* codec must cleanly fail (container
  // id check), never crash or return wrong data.
  Bytes compressed = codec->compress(input);
  for (const auto& other : table1_codecs()) {
    if (other->id() == codec->id()) continue;
    EXPECT_FALSE(other->decompress(compressed).ok())
        << other->name() << " accepted a " << codec->name() << " stream";
  }
}

[[nodiscard]] std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const char* codecs[] = {"RLE", "LZ77", "LZ78", "Huffman", "X-MatchPRO", "Zip", "7-zip"};
  const char* shapes[] = {"random", "zeros", "sparse", "strided", "text", "bitstream"};
  const std::size_t sizes[] = {1, 255, 4096, 40'000};
  u64 seed = 1000;
  for (const char* codec : codecs) {
    for (const char* shape : shapes) {
      for (std::size_t size : sizes) {
        cases.push_back(Case{codec, shape, size, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundTrip, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           std::string name = std::string(info.param.codec) + "_" +
                                              info.param.shape + "_" +
                                              std::to_string(info.param.size);
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

// Truncation fuzz: every codec must reject (not crash on) truncated streams.
class Truncation : public ::testing::TestWithParam<const char*> {};

TEST_P(Truncation, TruncatedStreamsRejectedOrShorter) {
  auto codec = make_codec(GetParam());
  ASSERT_NE(codec, nullptr);
  Prng rng(99);
  Bytes input;
  for (int i = 0; i < 3000; ++i) input.push_back(static_cast<u8>(rng.below(32)));
  Bytes c = codec->compress(input);

  for (std::size_t cut : {c.size() - 1, c.size() / 2, wire::kHeaderBytes + 1, std::size_t{3}}) {
    if (cut >= c.size()) continue;
    Bytes truncated(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(cut));
    auto r = codec->decompress(truncated);
    if (r.ok()) {
      // Acceptable only if the codec legitimately finished early with
      // exactly the declared size — then data must still match a prefix.
      FAIL() << codec->name() << " accepted a truncated stream";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, Truncation,
                         ::testing::Values("RLE", "LZ77", "LZ78", "Huffman", "X-MatchPRO",
                                           "Zip", "7-zip"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

// Bit-flip fuzz: corrupting a compressed stream must never crash the
// decoder; it either errors out or returns (wrong) data of bounded size.
class BitFlip : public ::testing::TestWithParam<const char*> {};

TEST_P(BitFlip, CorruptedStreamsNeverCrash) {
  auto codec = make_codec(GetParam());
  ASSERT_NE(codec, nullptr);
  Prng rng(7);
  Bytes input;
  for (int i = 0; i < 2000; ++i) input.push_back(static_cast<u8>(rng.below(64)));
  const Bytes c = codec->compress(input);

  for (int trial = 0; trial < 50; ++trial) {
    Bytes mutated = c;
    const std::size_t pos = wire::kHeaderBytes + rng.below(mutated.size() - wire::kHeaderBytes);
    mutated[pos] ^= static_cast<u8>(1u << rng.below(8));
    auto r = codec->decompress(mutated);
    if (r.ok()) {
      EXPECT_EQ(r.value().size(), input.size())
          << codec->name() << ": corrupted stream changed output size";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, BitFlip,
                         ::testing::Values("RLE", "LZ77", "LZ78", "Huffman", "X-MatchPRO",
                                           "Zip", "7-zip"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace uparc::compress
