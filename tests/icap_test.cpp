// Unit tests for the ICAP primitive model, config plane, DRP bus and DCM.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "fault/injector.hpp"
#include "icap/dcm.hpp"
#include "icap/icap.hpp"

namespace uparc::icap {
namespace {

using namespace uparc::literals;

class IcapFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  ConfigPlane plane{sim, "plane", bits::kVirtex5Sx50t};
  Icap port{sim, "icap", plane};
};

TEST_F(IcapFixture, ConsumesGeneratedBitstream) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 16_KiB;
  auto bs = bits::Generator(cfg).generate();

  bool done = false;
  port.on_done([&] { done = true; });
  for (u32 w : bs.body) port.write_word(w);

  EXPECT_TRUE(done);
  EXPECT_TRUE(port.done());
  EXPECT_FALSE(port.errored());
  EXPECT_TRUE(port.crc_checked());
  EXPECT_TRUE(port.crc_ok());
  EXPECT_EQ(port.frames_committed(), bs.frames.size());
  EXPECT_EQ(port.idcode_seen(), bits::kVirtex5Sx50t.idcode);
  EXPECT_TRUE(plane.contains(bs.frames));
}

TEST_F(IcapFixture, DetectsCorruptFrameViaCrc) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 8_KiB;
  auto bs = bits::Generator(cfg).generate();
  bs.body[bs.fdri_offset + 7] ^= 0x10;

  for (u32 w : bs.body) port.write_word(w);
  EXPECT_TRUE(port.done());  // stream is structurally intact
  EXPECT_TRUE(port.crc_checked());
  EXPECT_FALSE(port.crc_ok());
}

TEST_F(IcapFixture, RejectsWrongDeviceIdcode) {
  bits::GeneratorConfig cfg;
  cfg.device = bits::kVirtex6Lx240t;  // wrong device for this plane
  cfg.target_body_bytes = 8_KiB;
  auto bs = bits::Generator(cfg).generate();

  for (u32 w : bs.body) {
    port.write_word(w);
    if (port.errored()) break;
  }
  EXPECT_TRUE(port.errored());
  EXPECT_NE(port.error_message().find("IDCODE"), std::string::npos);
}

TEST_F(IcapFixture, IgnoresEverythingBeforeSync) {
  port.write_word(0xDEADBEEF);
  port.write_word(bits::kDummyWord);
  EXPECT_EQ(port.state(), IcapState::kPreSync);
  port.write_word(bits::kSyncWord);
  EXPECT_EQ(port.state(), IcapState::kIdle);
}

TEST_F(IcapFixture, ErrorsOnBareType2) {
  port.write_word(bits::kSyncWord);
  port.write_word(bits::type2(bits::Opcode::kWrite, 10));
  EXPECT_TRUE(port.errored());
}

TEST_F(IcapFixture, ErrorsOnFdriWithoutWcfg) {
  port.write_word(bits::kSyncWord);
  port.write_word(bits::type1(bits::Opcode::kWrite, bits::ConfigReg::kFdri, 1));
  port.write_word(0x12345678);
  EXPECT_TRUE(port.errored());
  EXPECT_NE(port.error_message().find("WCFG"), std::string::npos);
}

TEST_F(IcapFixture, ResetAllowsSecondBitstream) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 8_KiB;
  auto bs1 = bits::Generator(cfg).generate();
  cfg.seed = 77;
  cfg.start_address = bits::FrameAddress{0, 0, 1, 40, 0};
  auto bs2 = bits::Generator(cfg).generate();

  for (u32 w : bs1.body) port.write_word(w);
  ASSERT_TRUE(port.done());
  port.reset();
  EXPECT_EQ(port.state(), IcapState::kPreSync);
  for (u32 w : bs2.body) port.write_word(w);
  EXPECT_TRUE(port.done());
  EXPECT_TRUE(plane.contains(bs1.frames));
  EXPECT_TRUE(plane.contains(bs2.frames));
}

TEST_F(IcapFixture, AbortMidBurstClearsInFlightFrameState) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 8_KiB;
  auto bs = bits::Generator(cfg).generate();

  // Abort via the injector fault path, mid-FDRI so a frame is half-buffered.
  const u64 abort_at = static_cast<u64>(bs.fdri_offset) + 20;  // < one frame
  fault::FaultPlan plan;
  plan.seed = 2;
  plan.arm(fault::FaultSite::kIcapAbort, {.rate = 1.0, .after = abort_at, .max_fires = 1});
  fault::FaultInjector inj(sim, "inj", plan);
  inj.arm_icap(port);

  std::size_t streamed = 0;
  for (u32 w : bs.body) {
    port.write_word(w);
    ++streamed;
    if (port.errored()) break;
  }
  ASSERT_TRUE(port.errored());
  EXPECT_EQ(port.error_cause(), ErrorCause::kIcapAbort);
  EXPECT_LT(streamed, bs.body.size());

  // Regression: the abort must drop the torn frame and the packet's word
  // budget, or they would bleed into the next burst's accounting.
  EXPECT_EQ(port.in_flight_frame_words(), 0u);
  EXPECT_EQ(port.payload_words_left(), 0u);

  // A reset-and-restream (the recovery path) completes cleanly.
  port.reset();
  for (u32 w : bs.body) port.write_word(w);
  EXPECT_TRUE(port.done());
  EXPECT_TRUE(port.crc_ok());
  EXPECT_EQ(port.frames_committed(), bs.frames.size());
  EXPECT_TRUE(plane.contains(bs.frames));
}

TEST_F(IcapFixture, TrailingWordsAfterDesyncIgnored) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 8_KiB;
  auto bs = bits::Generator(cfg).generate();
  for (u32 w : bs.body) port.write_word(w);
  const u64 frames = port.frames_committed();
  port.write_word(0xFFFFFFFF);
  port.write_word(bits::kSyncWord);
  EXPECT_TRUE(port.done());
  EXPECT_EQ(port.frames_committed(), frames);
}

TEST_F(IcapFixture, ReadbackStreamsFramesViaFdro) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 8_KiB;
  auto bs = bits::Generator(cfg).generate();
  for (u32 w : bs.body) port.write_word(w);
  ASSERT_TRUE(port.done());

  // Readback command sequence: sync, FAR, CMD RCFG, FDRO read.
  port.reset();
  port.write_word(bits::kSyncWord);
  port.write_word(bits::type1(bits::Opcode::kWrite, bits::ConfigReg::kFar, 1));
  port.write_word(bs.frames[0].address.pack());
  port.write_word(bits::type1(bits::Opcode::kWrite, bits::ConfigReg::kCmd, 1));
  port.write_word(static_cast<u32>(bits::Command::kRcfg));
  port.write_word(bits::type1(bits::Opcode::kRead, bits::ConfigReg::kFdro, 0));
  port.write_word(bits::type2(bits::Opcode::kRead, 2 * 41));
  ASSERT_TRUE(port.readout_active());

  Words readback;
  u32 w = 0;
  while (port.read_word(w)) readback.push_back(w);
  ASSERT_EQ(readback.size(), 2u * 41);
  EXPECT_TRUE(std::equal(readback.begin(), readback.begin() + 41, bs.frames[0].data.begin()));
  EXPECT_TRUE(std::equal(readback.begin() + 41, readback.end(), bs.frames[1].data.begin()));
  EXPECT_FALSE(port.readout_active());
  EXPECT_EQ(port.state(), IcapState::kIdle);
  EXPECT_EQ(port.words_read_back(), 2u * 41);
}

TEST_F(IcapFixture, ReadbackOfUnwrittenFramesIsZero) {
  port.write_word(bits::kSyncWord);
  port.write_word(bits::type1(bits::Opcode::kWrite, bits::ConfigReg::kFar, 1));
  port.write_word(bits::FrameAddress{0, 1, 9, 9, 9}.pack());
  port.write_word(bits::type1(bits::Opcode::kWrite, bits::ConfigReg::kCmd, 1));
  port.write_word(static_cast<u32>(bits::Command::kRcfg));
  port.write_word(bits::type1(bits::Opcode::kRead, bits::ConfigReg::kFdro, 41));
  u32 w = 0xFFFFFFFFu;
  for (int i = 0; i < 41; ++i) {
    ASSERT_TRUE(port.read_word(w));
    EXPECT_EQ(w, 0u);
  }
  EXPECT_FALSE(port.read_word(w));
}

TEST_F(IcapFixture, ReadRequiresRcfgAndFdro) {
  port.write_word(bits::kSyncWord);
  // Read without RCFG: error.
  port.write_word(bits::type1(bits::Opcode::kRead, bits::ConfigReg::kFdro, 41));
  EXPECT_TRUE(port.errored());

  port.reset();
  port.write_word(bits::kSyncWord);
  port.write_word(bits::type1(bits::Opcode::kWrite, bits::ConfigReg::kCmd, 1));
  port.write_word(static_cast<u32>(bits::Command::kRcfg));
  // Read of a non-FDRO register: error.
  port.write_word(bits::type1(bits::Opcode::kRead, bits::ConfigReg::kFdri, 41));
  EXPECT_TRUE(port.errored());
}

TEST_F(IcapFixture, WriteDuringReadoutErrors) {
  port.write_word(bits::kSyncWord);
  port.write_word(bits::type1(bits::Opcode::kWrite, bits::ConfigReg::kCmd, 1));
  port.write_word(static_cast<u32>(bits::Command::kRcfg));
  port.write_word(bits::type1(bits::Opcode::kRead, bits::ConfigReg::kFdro, 41));
  ASSERT_TRUE(port.readout_active());
  port.write_word(bits::kNoopWord);
  EXPECT_TRUE(port.errored());
}

TEST(ConfigPlaneTest, FrameStorageAndMismatch) {
  sim::Simulation sim;
  ConfigPlane plane(sim, "plane", bits::kVirtex5Sx50t);
  bits::FrameAddress a{0, 0, 0, 5, 0};
  Words frame(41, 0xAAAA5555u);
  plane.write_frame(a, frame);
  ASSERT_NE(plane.read_frame(a), nullptr);
  EXPECT_EQ(*plane.read_frame(a), frame);
  EXPECT_EQ(plane.read_frame(bits::FrameAddress{0, 0, 0, 5, 1}), nullptr);

  Words wrong(40, 0);
  EXPECT_THROW(plane.write_frame(a, wrong), std::invalid_argument);

  std::vector<bits::Frame> expect{{a, Words(41, 0x1)}};
  EXPECT_FALSE(plane.contains(expect));
  plane.clear();
  EXPECT_EQ(plane.frames_written(), 0u);
}

TEST(DcmTest, ProgramRetunesAfterLock) {
  sim::Simulation sim;
  sim::Clock clk(sim, "clk", Frequency::mhz(100));
  Dcm dcm(sim, "dcm", Frequency::mhz(100), clk, TimePs::from_us(10));

  EXPECT_TRUE(dcm.locked());
  EXPECT_EQ(dcm.f_out(), Frequency::mhz(100));  // power-on M/D = 2/2

  bool relocked = false;
  dcm.on_locked([&] { relocked = true; });
  dcm.program(29, 8);  // the paper's 362.5 MHz setting
  EXPECT_FALSE(dcm.locked());
  sim.run();
  EXPECT_TRUE(relocked);
  EXPECT_TRUE(dcm.locked());
  EXPECT_NEAR(dcm.f_out().in_mhz(), 362.5, 1e-9);
  EXPECT_NEAR(clk.frequency().in_mhz(), 362.5, 1e-9);
}

TEST(DcmTest, RangeChecks) {
  sim::Simulation sim;
  sim::Clock clk(sim, "clk", Frequency::mhz(100));
  Dcm dcm(sim, "dcm", Frequency::mhz(100), clk);
  EXPECT_THROW(dcm.program(1, 8), std::invalid_argument);
  EXPECT_THROW(dcm.program(34, 8), std::invalid_argument);
  EXPECT_THROW(dcm.program(29, 0), std::invalid_argument);
  EXPECT_THROW(dcm.program(29, 33), std::invalid_argument);
}

TEST(DcmTest, NewProgramSupersedesPendingRelock) {
  sim::Simulation sim;
  sim::Clock clk(sim, "clk", Frequency::mhz(100));
  Dcm dcm(sim, "dcm", Frequency::mhz(100), clk, TimePs::from_us(10));
  dcm.program(4, 2);   // 200 MHz, relock pending
  dcm.program(29, 8);  // supersede before lock
  sim.run();
  EXPECT_NEAR(dcm.f_out().in_mhz(), 362.5, 1e-9);
  EXPECT_EQ(dcm.relocks(), 1u);  // only the surviving relock fired
}

TEST(DcmTest, GatesRunningClockDuringRelock) {
  sim::Simulation sim;
  sim::Clock clk(sim, "clk", Frequency::mhz(100));
  Dcm dcm(sim, "dcm", Frequency::mhz(100), clk, TimePs::from_us(1));
  int edges = 0;
  clk.on_rising([&] {
    if (++edges == 5) clk.disable();
  });
  clk.enable();
  dcm.program(4, 2);
  // Supply-gated during relock: the consumer's EN survives, but no edges
  // are delivered until LOCKED returns.
  EXPECT_TRUE(clk.enabled());
  EXPECT_FALSE(clk.supplied());
  EXPECT_FALSE(clk.running());
  sim.run();
  // Relocked: the supply returned and the clock ticked to its 5-edge stop.
  EXPECT_TRUE(clk.supplied());
  EXPECT_EQ(edges, 5);
  EXPECT_NEAR(clk.frequency().in_mhz(), 200.0, 1e-9);
}

TEST(DcmTest, DrpInterface) {
  sim::Simulation sim;
  sim::Clock clk(sim, "clk", Frequency::mhz(100));
  Dcm dcm(sim, "dcm", Frequency::mhz(100), clk, TimePs::from_us(1));
  DrpBus bus(sim, "drp");
  bus.attach(dcm);

  EXPECT_EQ(bus.write(Dcm::kRegM, 29 - 1), 3u);
  EXPECT_EQ(bus.write(Dcm::kRegD, 8 - 1), 3u);
  u16 status = 0xFFFF;
  (void)bus.read(Dcm::kRegStatus, status);
  EXPECT_EQ(status, 0x1);  // still locked: staged values not applied yet
  (void)bus.write(Dcm::kRegStatus, 0x2);
  (void)bus.read(Dcm::kRegStatus, status);
  EXPECT_EQ(status, 0x0);  // relocking
  sim.run();
  EXPECT_NEAR(dcm.f_out().in_mhz(), 362.5, 1e-9);
  EXPECT_EQ(bus.accesses(), 5u);
}

TEST(DrpBusTest, RequiresPeripheral) {
  sim::Simulation sim;
  DrpBus bus(sim, "drp");
  u16 v;
  EXPECT_THROW((void)bus.read(0, v), std::logic_error);
  EXPECT_THROW(DrpBus(sim, "bad", 0), std::invalid_argument);
}

}  // namespace
}  // namespace uparc::icap
