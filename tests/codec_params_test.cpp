// Parameter-grid sweeps over codec configuration spaces: every legal
// configuration must round-trip, and the knobs must move compression in the
// direction hardware intuition says they should.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "compress/huffman.hpp"
#include "compress/lz77.hpp"
#include "compress/lz78.hpp"
#include "compress/xmatchpro.hpp"
#include "icap/dcm.hpp"

namespace uparc::compress {
namespace {

Bytes strided_corpus(std::size_t size, u64 seed) {
  // 164-byte frame-like stride with point noise — the shape that matters.
  Prng rng(seed);
  Bytes unit(164);
  for (auto& b : unit) b = static_cast<u8>(rng.below(8) * 32);
  Bytes data;
  while (data.size() < size) {
    Bytes copy = unit;
    if (rng.chance(0.5)) copy[rng.below(copy.size())] = rng.byte();
    const std::size_t take = std::min(copy.size(), size - data.size());
    data.insert(data.end(), copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return data;
}

// ----------------------------------------------------------- LZ77 windows

struct Lz77Case {
  unsigned offset_bits;
  unsigned length_bits;
};

class Lz77Grid : public ::testing::TestWithParam<Lz77Case> {};

TEST_P(Lz77Grid, RoundTripsAtEveryWindowShape) {
  const auto [ob, lb] = GetParam();
  Lz77Codec codec(Lz77Params{ob, lb, 3});
  const Bytes input = strided_corpus(20'000, ob * 100 + lb);
  Bytes c = codec.compress(input);
  auto d = codec.decompress(c);
  ASSERT_TRUE(d.ok()) << d.error().message;
  EXPECT_EQ(d.value(), input);
}

INSTANTIATE_TEST_SUITE_P(Windows, Lz77Grid,
                         ::testing::Values(Lz77Case{4, 2}, Lz77Case{7, 4}, Lz77Case{8, 4},
                                           Lz77Case{11, 4}, Lz77Case{11, 8},
                                           Lz77Case{16, 8}, Lz77Case{24, 16}),
                         [](const auto& info) {
                           return "o" + std::to_string(info.param.offset_bits) + "_l" +
                                  std::to_string(info.param.length_bits);
                         });

TEST(Lz77Windows, WindowCrossingTheStrideIsTheBigWin) {
  // The 164-byte stride is invisible to a 128-byte window and trivially
  // captured by a 512-byte one: the step across the stride length dominates.
  const Bytes input = strided_corpus(40'000, 5);
  Lz77Codec small(Lz77Params{7, 4, 3});   // 128 B window: misses the stride
  Lz77Codec medium(Lz77Params{9, 4, 3});  // 512 B window: catches it
  const std::size_t small_size = small.compress(input).size();
  const std::size_t medium_size = medium.compress(input).size();
  EXPECT_LT(medium_size * 2, small_size);

  // Beyond that, *wider offsets cost bits per token*: a 16-bit-offset code
  // on the same data is larger than the 9-bit one — the reason hardware
  // codecs keep windows as small as the data allows.
  Lz77Codec wide(Lz77Params{16, 4, 3});
  EXPECT_GT(wide.compress(input).size(), medium_size);
}

// --------------------------------------------------------- LZ78 dictionary

class Lz78Grid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Lz78Grid, RoundTripsAtEveryDictionarySize) {
  Lz78Codec codec(GetParam());
  const Bytes input = strided_corpus(30'000, GetParam());
  auto d = codec.decompress(codec.compress(input));
  ASSERT_TRUE(d.ok()) << d.error().message;
  EXPECT_EQ(d.value(), input);
}

INSTANTIATE_TEST_SUITE_P(Dicts, Lz78Grid, ::testing::Values(256, 1024, 4096, 1u << 16));

TEST(Lz78Dicts, LargerDictionariesCompressBetter) {
  const Bytes input = strided_corpus(60'000, 7);
  const std::size_t small = Lz78Codec(256).compress(input).size();
  const std::size_t large = Lz78Codec(1u << 16).compress(input).size();
  EXPECT_LT(large, small);
}

// ------------------------------------------------------- X-MatchPRO depths

class XMatchGrid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XMatchGrid, RoundTripsAtEveryCamDepth) {
  XMatchProCodec codec(GetParam());
  const Bytes input = strided_corpus(30'000, GetParam() + 100);
  auto d = codec.decompress(codec.compress(input));
  ASSERT_TRUE(d.ok()) << d.error().message;
  EXPECT_EQ(d.value(), input);
}

INSTANTIATE_TEST_SUITE_P(Depths, XMatchGrid, ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

TEST(XMatchDepths, StreamsAreDepthSpecific) {
  // A stream compressed with one CAM depth must NOT decode under another
  // (location codes are sized by occupancy): expect failure or garbage,
  // never a crash.
  const Bytes input = strided_corpus(5'000, 3);
  XMatchProCodec deep(64);
  XMatchProCodec shallow(16);
  Bytes c = deep.compress(input);
  auto d = shallow.decompress(c);
  if (d.ok()) {
    EXPECT_NE(d.value(), input);
  }
}

// ------------------------------------------------- Huffman length limits

class HuffmanLimitGrid : public ::testing::TestWithParam<unsigned> {};

TEST_P(HuffmanLimitGrid, PackageMergeRespectsEveryLimit) {
  const unsigned limit = GetParam();
  Prng rng(limit);
  std::vector<u64> freqs(256);
  u64 f = 1;
  for (auto& v : freqs) {
    v = f;
    f = (f * 3) / 2 + 1;  // strongly skewed: unlimited depth would exceed 15
    if (f > 1'000'000) f = rng.below(100) + 1;
  }
  auto lengths = CanonicalCode::build_lengths(freqs, limit);
  double kraft = 0.0;
  for (u8 l : lengths) {
    EXPECT_LE(l, limit);
    if (l > 0) kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
  // The code must still be constructible and usable end to end.
  CanonicalCode code(lengths);
  BitWriter bw;
  for (u32 s = 0; s < 256; ++s) code.encode(bw, s);
  Bytes bitsdata = bw.finish();
  BitReader br(bitsdata);
  for (u32 s = 0; s < 256; ++s) EXPECT_EQ(code.decode(br), s);
}

INSTANTIATE_TEST_SUITE_P(Limits, HuffmanLimitGrid, ::testing::Values(8u, 10u, 12u, 15u));

}  // namespace
}  // namespace uparc::compress

namespace uparc::icap {
namespace {

// ------------------------------------------------------------ DCM M/D grid

TEST(DcmGrid, EveryLegalDividerPairSynthesizesExactly) {
  sim::Simulation sim;
  sim::Clock clk(sim, "clk", Frequency::mhz(100));
  Dcm dcm(sim, "dcm", Frequency::mhz(100), clk, TimePs::from_us(1));
  for (unsigned m = Dcm::kMinM; m <= Dcm::kMaxM; m += 3) {
    for (unsigned d = Dcm::kMinD; d <= Dcm::kMaxD; d += 3) {
      dcm.program(m, d);
      sim.run();
      ASSERT_TRUE(dcm.locked());
      EXPECT_NEAR(dcm.f_out().in_mhz(), 100.0 * m / d, 1e-9) << m << "/" << d;
      EXPECT_NEAR(clk.frequency().in_mhz(), 100.0 * m / d, 1e-9);
    }
  }
}

}  // namespace
}  // namespace uparc::icap
