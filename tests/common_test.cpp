// Unit tests for the support library: units, results, CRC, bit I/O, PRNG.
#include <gtest/gtest.h>

#include "common/bitio.hpp"
#include "common/crc32.hpp"
#include "common/hexdump.hpp"
#include "common/prng.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace uparc {
namespace {

using namespace uparc::literals;

TEST(Units, FrequencyPeriodRoundTrip) {
  EXPECT_EQ(Frequency::mhz(100).period().ps(), 10'000u);
  EXPECT_EQ(Frequency::mhz(362.5).period().ps(), 2759u);  // 2758.6 ps rounded
  EXPECT_EQ(Frequency::mhz(50).period().ps(), 20'000u);
}

TEST(Units, FrequencyZeroPeriodThrows) {
  EXPECT_THROW((void)Frequency().period(), std::domain_error);
}

TEST(Units, TimeArithmetic) {
  TimePs a = TimePs::from_us(1.5);
  TimePs b = TimePs::from_ns(500);
  EXPECT_EQ((a + b).ps(), 2'000'000u);
  EXPECT_EQ((a - b).ps(), 1'000'000u);
  EXPECT_DOUBLE_EQ((a + b).us(), 2.0);
  EXPECT_LT(b, a);
}

TEST(Units, TimeLiteralsAndScaling) {
  EXPECT_EQ((TimePs::from_ns(10) * 3).ps(), 30'000u);
  EXPECT_EQ(64_KiB, 65'536u);
  EXPECT_EQ(2_MiB, 2'097'152u);
}

TEST(Units, BandwidthFromBytesOverTime) {
  // 400 MB in one second.
  Bandwidth bw = Bandwidth::from_bytes_over(400'000'000, TimePs::from_seconds(1.0));
  EXPECT_NEAR(bw.mb_per_sec(), 400.0, 1e-9);
  EXPECT_THROW((void)Bandwidth::from_bytes_over(1, TimePs(0)), std::domain_error);
}

TEST(Units, TheoreticalIcapBandwidthAtPaperFrequencies) {
  // Paper: 4 bytes/cycle -> 1.45 GB/s at 362.5 MHz, 400 MB/s at 100 MHz.
  const double bytes_per_cycle = 4.0;
  EXPECT_NEAR(Frequency::mhz(362.5).in_hz() * bytes_per_cycle * 1e-9, 1.45, 1e-12);
  EXPECT_NEAR(Frequency::mhz(100).in_hz() * bytes_per_cycle * 1e-6, 400.0, 1e-9);
}

TEST(Units, ToStringFormats) {
  EXPECT_EQ(to_string(Frequency::mhz(362.5)), "362.5 MHz");
  EXPECT_EQ(to_string(TimePs::from_us(550)), "550 us");
  EXPECT_EQ(to_string(TimePs::from_ns(5)), "5 ns");
  EXPECT_EQ(to_string(TimePs::from_ms(1.1)), "1.1 ms");
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> bad = make_error("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_THROW((void)bad.value(), std::runtime_error);
  EXPECT_THROW((void)ok.error(), std::runtime_error);
}

TEST(Result, StatusSuccessAndFailure) {
  Status s = Status::success();
  EXPECT_TRUE(s.ok());
  Status f = make_error("broken");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error().message, "broken");
}

TEST(Crc32, KnownVectors) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* s = "123456789";
  Bytes b(s, s + 9);
  EXPECT_EQ(crc32(b), 0xCBF43926u);
  EXPECT_EQ(crc32(BytesView{}), 0x00000000u);
}

TEST(Crc32, WordOrderMatchesByteOrder) {
  Words w = {0x01020304u, 0xAABBCCDDu};
  Bytes b = words_to_bytes(w);
  EXPECT_EQ(crc32_words(w), crc32(b));
}

TEST(Crc32, StreamingEqualsOneShot) {
  Prng rng(7);
  Bytes data(1000);
  for (auto& x : data) x = rng.byte();
  Crc32 c;
  c.update(BytesView(data).subspan(0, 400));
  c.update(BytesView(data).subspan(400));
  EXPECT_EQ(c.value(), crc32(data));
}

TEST(Types, WordPackingRoundTrip) {
  Bytes b = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04};
  Words w = bytes_to_words(b);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 0xDEADBEEFu);
  EXPECT_EQ(w[1], 0x01020304u);
  EXPECT_EQ(words_to_bytes(w), b);
}

TEST(Types, WordPackingPadsTail) {
  Bytes b = {0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  Words w = bytes_to_words(b);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[1], 0xEE000000u);
}

TEST(BitIo, RoundTripMixedWidths) {
  BitWriter bw;
  bw.put(0b101, 3);
  bw.put(0xDEADu, 16);
  bw.put_bit(true);
  bw.put(0x7, 3);
  bw.put(0x12345678u, 32);
  Bytes data = bw.finish();

  BitReader br(data);
  EXPECT_EQ(br.get(3), 0b101u);
  EXPECT_EQ(br.get(16), 0xDEADu);
  EXPECT_TRUE(br.get_bit());
  EXPECT_EQ(br.get(3), 0x7u);
  EXPECT_EQ(br.get(32), 0x12345678u);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter bw;
  bw.put(0xF, 4);
  Bytes data = bw.finish();  // one byte after padding
  BitReader br(data);
  EXPECT_EQ(br.get(8), 0xF0u);
  EXPECT_THROW((void)br.get(1), std::out_of_range);
}

TEST(BitIo, BitCountTracksWrites) {
  BitWriter bw;
  bw.put(1, 1);
  bw.put(0, 13);
  EXPECT_EQ(bw.bit_count(), 14u);
}

TEST(Prng, DeterministicForSeed) {
  Prng a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Prng, RangeBounds) {
  Prng rng(5);
  for (int i = 0; i < 1000; ++i) {
    u64 v = rng.range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, ChanceExtremes) {
  Prng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Hexdump, FormatsBytes) {
  Bytes b = {'H', 'i', 0x00, 0xFF};
  std::string d = hexdump(b);
  EXPECT_NE(d.find("48 69 00 ff"), std::string::npos);
  EXPECT_NE(d.find("|Hi..|"), std::string::npos);
}

TEST(Hexdump, TruncatesAtLimit) {
  Bytes b(1000, 0xAB);
  std::string d = hexdump(b, 32);
  EXPECT_NE(d.find("more bytes"), std::string::npos);
}

}  // namespace
}  // namespace uparc
