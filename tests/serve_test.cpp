// Tests for the serving front end: workload determinism, queue/admission
// semantics, failover, and the overload soak invariants.
#include <gtest/gtest.h>

#include "serve/soak.hpp"

namespace uparc::serve {
namespace {

std::vector<TenantSpec> replay_tenants() {
  TenantSpec open;
  open.name = "open";
  open.qos = QosClass::kStandard;
  open.mode = ArrivalMode::kOpenLoop;
  open.rate_rps = 5000;
  TenantSpec closed;
  closed.name = "closed";
  closed.qos = QosClass::kGuaranteed;
  closed.mode = ArrivalMode::kClosedLoop;
  closed.concurrency = 3;
  closed.think_time = TimePs::from_us(200);
  TenantSpec bursty;
  bursty.name = "bursty";
  bursty.qos = QosClass::kBestEffort;
  bursty.mode = ArrivalMode::kBursty;
  bursty.rate_rps = 3000;
  bursty.burst_factor = 10;
  return {open, closed, bursty};
}

// Satellite: same seed => identical arrival trace, across all three
// arrival modes at once.
TEST(WorkloadTest, SameSeedReplaysIdenticalTrace) {
  WorkloadGenerator a(replay_tenants(), 4, 42);
  WorkloadGenerator b(replay_tenants(), 4, 42);
  const auto ta = a.trace(500);
  const auto tb = b.trace(500);
  ASSERT_EQ(ta.size(), tb.size());
  ASSERT_EQ(ta.size(), 500u);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].id, tb[i].id);
    EXPECT_EQ(ta[i].tenant, tb[i].tenant);
    EXPECT_EQ(ta[i].qos, tb[i].qos);
    EXPECT_EQ(ta[i].module, tb[i].module);
    EXPECT_EQ(ta[i].arrival, tb[i].arrival);
    EXPECT_EQ(ta[i].deadline, tb[i].deadline);
  }
}

TEST(WorkloadTest, DifferentSeedsDiverge) {
  WorkloadGenerator a(replay_tenants(), 4, 1);
  WorkloadGenerator b(replay_tenants(), 4, 2);
  const auto ta = a.trace(100);
  const auto tb = b.trace(100);
  bool differs = false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].arrival != tb[i].arrival || ta[i].module != tb[i].module) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(WorkloadTest, ArrivalsAreMonotoneAndDeadlinesConsistent) {
  WorkloadGenerator gen(replay_tenants(), 4, 7);
  const auto trace = gen.trace(400);
  TimePs last{};
  for (const Request& r : trace) {
    EXPECT_GE(r.arrival, last);
    last = r.arrival;
    EXPECT_GT(r.deadline, r.arrival);
  }
}

TEST(WorkloadTest, ClosedLoopFollowsCompletions) {
  std::vector<TenantSpec> tenants = {replay_tenants()[1]};
  WorkloadGenerator gen(tenants, 2, 3);
  const auto initial = gen.initial_arrivals();
  EXPECT_EQ(initial.size(), 3u);  // one per logical client
  EXPECT_EQ(gen.next_open(0), std::nullopt);
  const Request next = gen.next_closed(0, TimePs::from_ms(5));
  EXPECT_GT(next.arrival, TimePs::from_ms(5));
}

Request make_req(u64 id, QosClass qos, TimePs deadline, TimePs cost = TimePs::from_us(100)) {
  Request r;
  r.id = id;
  r.qos = qos;
  r.deadline = deadline;
  r.est_cost = cost;
  r.module = "m0";
  return r;
}

// Satellite: EDF-queue property — admitted guaranteed requests are never
// reordered behind lower classes, whatever the interleaving.
TEST(ClassQueuesTest, GuaranteedNeverReorderedBehindLowerClasses) {
  Prng prng(99);
  ClassQueues q(128);
  u64 id = 0;
  std::vector<Request> expired;
  for (int round = 0; round < 2000; ++round) {
    if (prng.chance(0.6) || q.empty()) {
      const auto qos = static_cast<QosClass>(prng.below(3));
      const TimePs deadline = TimePs::from_us(10 + prng.below(100000));
      auto res = q.push(make_req(id++, qos, deadline));
      (void)res;
    } else {
      const bool had_guaranteed = q.size(QosClass::kGuaranteed) > 0;
      auto r = q.pop(TimePs{}, expired);
      ASSERT_TRUE(r.has_value());
      if (had_guaranteed) {
        EXPECT_EQ(r->qos, QosClass::kGuaranteed)
            << "a lower class was dispatched while guaranteed work waited";
      }
    }
  }
  EXPECT_TRUE(expired.empty());  // popped at t=0: nothing can have expired
}

TEST(ClassQueuesTest, EdfWithinClass) {
  ClassQueues q(16);
  (void)q.push(make_req(0, QosClass::kStandard, TimePs::from_us(900)));
  (void)q.push(make_req(1, QosClass::kStandard, TimePs::from_us(100)));
  (void)q.push(make_req(2, QosClass::kStandard, TimePs::from_us(500)));
  std::vector<Request> expired;
  EXPECT_EQ(q.pop(TimePs{}, expired)->id, 1u);
  EXPECT_EQ(q.pop(TimePs{}, expired)->id, 2u);
  EXPECT_EQ(q.pop(TimePs{}, expired)->id, 0u);
}

TEST(ClassQueuesTest, ShedsStrictlyLowestClassFirst) {
  ClassQueues q(3);
  (void)q.push(make_req(0, QosClass::kBestEffort, TimePs::from_us(100)));
  (void)q.push(make_req(1, QosClass::kBestEffort, TimePs::from_us(200)));
  (void)q.push(make_req(2, QosClass::kStandard, TimePs::from_us(100)));
  // Queue full: a guaranteed push must displace the best-effort entry with
  // the *latest* deadline, not the standard one and not itself.
  auto res = q.push(make_req(3, QosClass::kGuaranteed, TimePs::from_us(50)));
  EXPECT_TRUE(res.queued);
  ASSERT_EQ(res.shed.size(), 1u);
  EXPECT_EQ(res.shed[0].id, 1u);
  EXPECT_EQ(res.shed[0].qos, QosClass::kBestEffort);

  // An incoming best-effort request with the latest deadline of its class
  // is itself the victim when nothing lower exists.
  auto res2 = q.push(make_req(4, QosClass::kBestEffort, TimePs::from_ms(10)));
  EXPECT_FALSE(res2.queued);
  ASSERT_EQ(res2.shed.size(), 1u);
  EXPECT_EQ(res2.shed[0].id, 4u);
}

TEST(ClassQueuesTest, IncomingGuaranteedShedOnlyAmongPeers) {
  ClassQueues q(2);
  (void)q.push(make_req(0, QosClass::kGuaranteed, TimePs::from_us(100)));
  (void)q.push(make_req(1, QosClass::kGuaranteed, TimePs::from_us(200)));
  // All-guaranteed full queue: the latest-deadline guaranteed entry is the
  // only legal victim.
  auto res = q.push(make_req(2, QosClass::kGuaranteed, TimePs::from_us(300)));
  EXPECT_FALSE(res.queued);
  ASSERT_EQ(res.shed.size(), 1u);
  EXPECT_EQ(res.shed[0].id, 2u);

  auto res2 = q.push(make_req(3, QosClass::kGuaranteed, TimePs::from_us(50)));
  EXPECT_TRUE(res2.queued);
  ASSERT_EQ(res2.shed.size(), 1u);
  EXPECT_EQ(res2.shed[0].id, 1u);
}

TEST(ClassQueuesTest, PopSweepsExpiredEntries) {
  ClassQueues q(8);
  (void)q.push(make_req(0, QosClass::kStandard, TimePs::from_us(10)));
  (void)q.push(make_req(1, QosClass::kStandard, TimePs::from_us(20)));
  (void)q.push(make_req(2, QosClass::kStandard, TimePs::from_ms(10)));
  std::vector<Request> expired;
  auto r = q.pop(TimePs::from_us(50), expired);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->id, 2u);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(TokenBucketTest, RefillsOverSimulatedTime) {
  TokenBucket bucket(1000.0, 2.0);  // 1000 tokens/s, burst 2
  EXPECT_TRUE(bucket.try_take(TimePs{}));
  EXPECT_TRUE(bucket.try_take(TimePs{}));
  EXPECT_FALSE(bucket.try_take(TimePs{}));  // burst exhausted
  // 1 ms later exactly one token has refilled.
  EXPECT_TRUE(bucket.try_take(TimePs::from_ms(1)));
  EXPECT_FALSE(bucket.try_take(TimePs::from_ms(1)));
  // Refill caps at the burst size no matter how long the idle gap.
  EXPECT_TRUE(bucket.try_take(TimePs::from_ms(1000)));
  EXPECT_TRUE(bucket.try_take(TimePs::from_ms(1000)));
  EXPECT_FALSE(bucket.try_take(TimePs::from_ms(1000)));
}

TEST(AdmissionTest, RejectsInfeasibleDeadlines) {
  obs::Registry metrics;
  TenantSpec t;
  std::vector<TenantSpec> tenants = {t};
  AdmissionController admission(tenants, metrics);

  Request ok = make_req(0, QosClass::kStandard, TimePs::from_ms(1));
  EXPECT_EQ(admission.admit(ok, TimePs{}, TimePs{}, 1, TimePs::from_us(100)),
            AdmitVerdict::kAdmit);

  // Backlog alone pushes the finish past the deadline.
  Request late = make_req(1, QosClass::kStandard, TimePs::from_ms(1));
  EXPECT_EQ(admission.admit(late, TimePs{}, TimePs::from_ms(5), 1, TimePs::from_us(100)),
            AdmitVerdict::kRejectInfeasible);
  EXPECT_EQ(metrics.counter_value("serve.reject.infeasible"), 1.0);

  // More devices drain the same backlog in parallel: feasible again.
  Request par = make_req(2, QosClass::kStandard, TimePs::from_ms(1));
  EXPECT_EQ(admission.admit(par, TimePs{}, TimePs::from_ms(5), 8, TimePs::from_us(100)),
            AdmitVerdict::kAdmit);
}

TEST(AdmissionTest, TokenBucketRejectionsCount) {
  obs::Registry metrics;
  TenantSpec t;
  t.bucket_rate_rps = 10.0;
  t.bucket_burst = 1.0;
  std::vector<TenantSpec> tenants = {t};
  AdmissionController admission(tenants, metrics);
  Request r = make_req(0, QosClass::kStandard, TimePs::from_ms(100));
  EXPECT_EQ(admission.admit(r, TimePs{}, TimePs{}, 1, TimePs::from_us(10)),
            AdmitVerdict::kAdmit);
  EXPECT_EQ(admission.admit(r, TimePs{}, TimePs{}, 1, TimePs::from_us(10)),
            AdmitVerdict::kRejectBucket);
  EXPECT_EQ(metrics.counter_value("serve.reject.bucket"), 1.0);
}

// End-to-end: a clean 1x-rated run must complete everything in-deadline
// for the guaranteed class, with zero invariant violations.
TEST(ServeSoakTest, CleanRunAtRatedLoadMeetsGuaranteedDeadlines) {
  ServeSoakConfig cfg;
  cfg.seed = 11;
  cfg.requests = 300;
  cfg.devices = 2;
  cfg.load_factor = 1.0;
  cfg.fault_scale = 0.0;
  const ServeSoakReport report = run_soak(cfg);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.deadline_miss[0], 0u) << report.summary();
  EXPECT_EQ(report.shed[0], 0u) << report.summary();
  EXPECT_EQ(report.timed_out[0], 0u) << report.summary();
  EXPECT_GT(report.completed[0] + report.completed[1] + report.completed[2], 0u);
}

// Overload with faults: invariants hold and shedding lands on best effort.
TEST(ServeSoakTest, OverloadWithFaultsHoldsInvariants) {
  ServeSoakConfig cfg;
  cfg.seed = 23;
  cfg.requests = 400;
  cfg.devices = 2;
  cfg.load_factor = 2.0;
  cfg.fault_scale = 1.0;
  const ServeSoakReport report = run_soak(cfg);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.shed[0], 0u) << report.summary();
  EXPECT_NE(report.metrics_json.find("serve.latency_us"), std::string::npos);
  EXPECT_NE(report.health_json.find("\"regions\""), std::string::npos);
}

// Determinism: the same soak config twice produces identical outcomes.
TEST(ServeSoakTest, SoakIsDeterministic) {
  ServeSoakConfig cfg;
  cfg.seed = 5;
  cfg.requests = 150;
  cfg.load_factor = 1.5;
  cfg.fault_scale = 0.5;
  const ServeSoakReport a = run_soak(cfg);
  const ServeSoakReport b = run_soak(cfg);
  EXPECT_EQ(a.issued, b.issued);
  for (std::size_t c = 0; c < kQosClassCount; ++c) {
    EXPECT_EQ(a.completed[c], b.completed[c]);
    EXPECT_EQ(a.shed[c], b.shed[c]);
    EXPECT_EQ(a.timed_out[c], b.timed_out[c]);
    EXPECT_EQ(a.rejected[c], b.rejected[c]);
  }
  EXPECT_EQ(a.sim_ms, b.sim_ms);
}

TEST(BreakerJsonTest, RoundTripPreservesBackoffState) {
  Breaker b;
  b.consecutive_failures = 2;
  b.opens = 5;  // drives the backoff exponent: 5 opens = 32x base
  b.open = true;
  b.open_until = TimePs::from_ms(7);

  const Breaker restored = Breaker::from_json(b.to_json());
  EXPECT_EQ(restored.consecutive_failures, 2u);
  // Regression: a restored breaker continues its doubling schedule — losing
  // `opens` across a restart would reset a flapping device to short
  // backoffs and let it thrash the fleet.
  EXPECT_EQ(restored.opens, 5u);
  EXPECT_TRUE(restored.open);
  EXPECT_EQ(restored.open_until, TimePs::from_ms(7));

  EXPECT_THROW((void)Breaker::from_json("not json"), std::runtime_error);
  EXPECT_THROW((void)Breaker::from_json("{\"opens\":1}"), std::out_of_range);
}

TEST(ServeSoakTest, RestartDrillRecoversControllersMidSoak) {
  ServeSoakConfig cfg;
  cfg.seed = 11;
  cfg.requests = 200;
  cfg.devices = 2;
  cfg.load_factor = 1.5;
  cfg.fault_scale = 1.0;
  cfg.restart_after_loads = 15;
  const ServeSoakReport report = run_soak(cfg);
  EXPECT_TRUE(report.ok()) << report.summary();
  // Both controllers crossed the quota and were cold-restarted from their
  // WALs mid-run; the run still satisfies every per-request invariant.
  EXPECT_EQ(report.restarts, 2u);

  // The drill itself must be deterministic.
  const ServeSoakReport again = run_soak(cfg);
  EXPECT_EQ(again.restarts, report.restarts);
  EXPECT_EQ(again.issued, report.issued);
  EXPECT_EQ(again.sim_ms, report.sim_ms);
}

}  // namespace
}  // namespace uparc::serve
