// Unit tests for the Manager layer: cost model, preloader, control,
// frequency adaptation.
#include <gtest/gtest.h>

#include "bitstream/writer.hpp"
#include "manager/adaptation.hpp"
#include "manager/control.hpp"
#include "manager/preloader.hpp"

namespace uparc::manager {
namespace {

using namespace uparc::literals;

TEST(MicroBlazeTest, CycleTimeAtHundredMegahertz) {
  sim::Simulation sim;
  MicroBlaze mb(sim, "mb");
  EXPECT_EQ(mb.cycles(125).ps(), 1'250'000u);  // the Fig. 5 1.25 us overhead
  bool ran = false;
  mb.execute(100, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now().ps(), 1'000'000u);
  EXPECT_EQ(mb.busy_time().ps(), 1'000'000u);
}

class PreloaderFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  MicroBlaze mb{sim, "mb"};
  mem::Bram bram{sim, "bram", 256_KiB};
  Preloader pre{sim, "pre", mb, bram};

  bits::PartialBitstream make_bs(std::size_t bytes, u64 seed = 1) {
    bits::GeneratorConfig cfg;
    cfg.target_body_bytes = bytes;
    cfg.seed = seed;
    return bits::Generator(cfg).generate();
  }
};

TEST_F(PreloaderFixture, PreloadsBodyWithModeWord) {
  auto bs = make_bs(32_KiB);
  bool done = false;
  auto st = pre.preload_body(bs.body, [&] { done = true; });
  ASSERT_TRUE(st.ok());
  sim.run();
  ASSERT_TRUE(done);

  const u32 header = bram.read_word(0);
  EXPECT_FALSE(BramLayout::is_compressed(header));
  EXPECT_EQ(BramLayout::payload_words(header), bs.body.size());
  EXPECT_EQ(bram.read_word(1), bs.body[0]);
  EXPECT_EQ(bram.read_word(bs.body.size()), bs.body.back());
  // Copy time: (words+1) * 8 cycles at 100 MHz.
  EXPECT_EQ(pre.last_duration().ps(), (bs.body.size() + 1) * 8 * 10'000);
}

TEST_F(PreloaderFixture, PreloadsFullBitFile) {
  auto bs = make_bs(16_KiB);
  Bytes file = bits::to_file(bs);
  bool done = false;
  auto st = pre.preload_file(file, [&] { done = true; });
  ASSERT_TRUE(st.ok());
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(BramLayout::payload_words(bram.read_word(0)), bs.body.size());
}

TEST_F(PreloaderFixture, RejectsOversizedBody) {
  auto bs = make_bs(300_KiB);  // > 256 KB BRAM
  auto st = pre.preload_body(bs.body, [] {});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("does not fit"), std::string::npos);
}

TEST_F(PreloaderFixture, RejectsCorruptFile) {
  Bytes junk(100, 0xAB);
  EXPECT_FALSE(pre.preload_file(junk, [] {}).ok());
}

TEST_F(PreloaderFixture, CompressedContainerStoredVerbatim) {
  Bytes container = {0xC5, 0x05, 0x00, 0x00, 0x10, 0x00, 0xAA, 0xBB};
  bool done = false;
  auto st = pre.preload_compressed(container, [&] { done = true; });
  ASSERT_TRUE(st.ok());
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(BramLayout::is_compressed(bram.read_word(0)));
  EXPECT_EQ(BramLayout::payload_words(bram.read_word(0)), 2u);
  EXPECT_EQ(bram.read_word(1), 0xC5050000u);
}

TEST(ControlTest, LaunchChargesOverheadAndWaits) {
  sim::Simulation sim;
  MicroBlaze mb(sim, "mb");
  ReconfigControl ctl(sim, "ctl", mb, nullptr, WaitMode::kActiveWait);
  EXPECT_EQ(ctl.control_overhead().ps(), 1'250'000u);

  std::function<void()> hw_finish;
  bool done = false;
  TimePs started_at{};
  ctl.launch(
      [&](std::function<void()> finish) {
        started_at = sim.now();
        hw_finish = std::move(finish);
      },
      [&] { done = true; });
  EXPECT_TRUE(ctl.busy());
  sim.run();
  EXPECT_EQ(started_at.ps(), 1'250'000u);  // Start after 125 cycles
  ASSERT_TRUE(hw_finish != nullptr);
  EXPECT_FALSE(done);

  // Hardware raises Finish 100 us later.
  sim.schedule_at(TimePs::from_us(100), [&] { hw_finish(); });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ctl.busy());
  EXPECT_EQ(ctl.launches(), 1u);
}

TEST(ControlTest, ActiveWaitDrawsManagerPower) {
  sim::Simulation sim;
  power::Rail rail(sim, "r");
  MicroBlaze mb(sim, "mb");
  ReconfigControl ctl(sim, "ctl", mb, &rail, WaitMode::kActiveWait);

  std::function<void()> hw_finish;
  ctl.launch([&](std::function<void()> f) { hw_finish = std::move(f); }, [] {});
  sim.run();
  // During the wait, the manager's active-wait level (107 mW) is on the rail.
  EXPECT_NEAR(rail.current_mw(), power::kManagerActiveWaitMw, 1e-9);
  hw_finish();
  sim.run();
  EXPECT_EQ(rail.current_mw(), 0.0);
}

TEST(ControlTest, InterruptModeDrawsNothingWhileWaiting) {
  sim::Simulation sim;
  power::Rail rail(sim, "r");
  MicroBlaze mb(sim, "mb");
  ReconfigControl ctl(sim, "ctl", mb, &rail, WaitMode::kInterrupt);

  std::function<void()> hw_finish;
  ctl.launch([&](std::function<void()> f) { hw_finish = std::move(f); }, [] {});
  sim.run();
  EXPECT_EQ(rail.current_mw(), 0.0);
  hw_finish();
  sim.run();
}

TEST(ControlTest, DoubleLaunchThrows) {
  sim::Simulation sim;
  MicroBlaze mb(sim, "mb");
  ReconfigControl ctl(sim, "ctl", mb, nullptr);
  ctl.launch([](std::function<void()>) {}, [] {});
  EXPECT_THROW(ctl.launch([](std::function<void()>) {}, [] {}), std::logic_error);
}

class AdapterFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  clocking::DyCloGen gen{sim, "dyclogen", Frequency::mhz(100), TimePs::from_us(10)};
  FrequencyAdapter adapter{gen, Frequency::mhz(362.5), TimePs::from_us(1.25),
                           WaitMode::kActiveWait};
};

TEST_F(AdapterFixture, PredictsFig5AnchorPoints) {
  // 6.5 KB at 362.5 MHz: ~78.8% of the 1.45 GB/s theoretical bandwidth.
  const u64 small = 6656;
  const TimePs t_small = adapter.predict_time(small, Frequency::mhz(362.5));
  const double bw_small = small / t_small.seconds() / 1e9;
  EXPECT_NEAR(bw_small / 1.45, 0.788, 0.015);

  // 247 KB: ~99%.
  const u64 big = 247 * 1024;
  const TimePs t_big = adapter.predict_time(big, Frequency::mhz(362.5));
  const double bw_big = big / t_big.seconds() / 1e9;
  EXPECT_NEAR(bw_big / 1.45, 0.99, 0.005);
}

TEST_F(AdapterFixture, MinFrequencyMeetsDeadlineExactly) {
  const u64 bytes = 216 * 1024;
  auto f = adapter.min_frequency_for(bytes, TimePs::from_us(500));
  ASSERT_TRUE(f.has_value());
  EXPECT_LE(adapter.predict_time(bytes, *f).ps(), TimePs::from_us(500).ps() + 1000);
  EXPECT_FALSE(adapter.min_frequency_for(bytes, TimePs::from_us(1)).has_value());
  EXPECT_FALSE(adapter.min_frequency_for(bytes, TimePs::from_us(100)).has_value());
}

TEST_F(AdapterFixture, MaxPerformancePlanPicksPaperPoint) {
  auto plan = adapter.plan(FrequencyPolicy::kMaxPerformance, 216 * 1024, TimePs::from_ms(10));
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->choice.f_out.in_mhz(), 362.5, 1e-6);
  EXPECT_EQ(plan->choice.m, 29u);
  EXPECT_EQ(plan->choice.d, 8u);
}

TEST_F(AdapterFixture, MinPowerPlanPicksLowestFeasible) {
  const u64 bytes = 216 * 1024;
  const TimePs deadline = TimePs::from_ms(1.2);  // ~50 MHz territory
  auto plan = adapter.plan(FrequencyPolicy::kMinPowerDeadline, bytes, deadline);
  ASSERT_TRUE(plan.has_value());
  EXPECT_LE(plan->predicted_time, deadline);
  // The next synthesizable frequency down must miss the deadline.
  EXPECT_LT(plan->choice.f_out.in_mhz(), 60.0);
  EXPECT_GT(plan->predicted_mw, 0.0);
  EXPECT_GT(plan->predicted_uj, 0.0);
}

TEST_F(AdapterFixture, MinEnergyWithActiveWaitGoesFast) {
  auto plan = adapter.plan(FrequencyPolicy::kMinEnergy, 216 * 1024, TimePs::from_ms(5));
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->choice.f_out.in_mhz(), 362.5, 1e-6);
}

TEST_F(AdapterFixture, MinEnergyIsTrueArgminOverTheGrid) {
  // kMinEnergy explicitly minimizes predicted energy among deadline-meeting
  // synthesizable frequencies. Under the calibrated sub-linear power curve
  // that lands at high frequency in both wait modes.
  FrequencyAdapter irq_adapter(gen, Frequency::mhz(362.5), TimePs::from_us(1.25),
                               WaitMode::kInterrupt);
  auto plan =
      irq_adapter.plan(FrequencyPolicy::kMinEnergy, 216 * 1024, TimePs::from_ms(1.2));
  ASSERT_TRUE(plan.has_value());
  // No other feasible grid frequency has lower predicted energy.
  for (double mhz : {50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 362.5}) {
    const Frequency f = Frequency::mhz(mhz);
    if (irq_adapter.predict_time(216 * 1024, f) > TimePs::from_ms(1.2)) continue;
    EXPECT_LE(plan->predicted_uj, irq_adapter.predict_uj(216 * 1024, f) + 1e-9) << mhz;
  }
  EXPECT_GT(plan->choice.f_out.in_mhz(), 300.0);
}

TEST_F(AdapterFixture, ApplyProgramsDyCloGen) {
  bool relocked = false;
  auto plan = adapter.apply(FrequencyPolicy::kMaxPerformance, 64_KiB, TimePs::from_ms(10),
                            [&] { relocked = true; });
  ASSERT_TRUE(plan.has_value());
  sim.run();
  EXPECT_TRUE(relocked);
  EXPECT_NEAR(gen.frequency(clocking::ClockId::kReconfig).in_mhz(), 362.5, 1e-6);
}

TEST_F(AdapterFixture, ActiveWaitEnergyFallsWithFrequency) {
  // The paper's observation: with an active-wait manager, faster is cheaper.
  const u64 bytes = 216 * 1024;
  const double e50 = adapter.predict_uj(bytes, Frequency::mhz(50));
  const double e100 = adapter.predict_uj(bytes, Frequency::mhz(100));
  const double e300 = adapter.predict_uj(bytes, Frequency::mhz(300));
  EXPECT_GT(e50, e100);
  EXPECT_GT(e100, e300);
}

}  // namespace
}  // namespace uparc::manager
