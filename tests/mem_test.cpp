// Unit tests for the memory models: BRAM, DDR2, CompactFlash.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "mem/bram.hpp"
#include "mem/compact_flash.hpp"
#include "mem/ddr2.hpp"

namespace uparc::mem {
namespace {

using namespace uparc::literals;

TEST(Bram, SizeAndRating) {
  sim::Simulation sim;
  Bram bram(sim, "bram", 256_KiB);
  EXPECT_EQ(bram.size_bytes(), 256_KiB);
  EXPECT_EQ(bram.size_words(), 65'536u);
  EXPECT_EQ(bram.rated_fmax(), Frequency::mhz(300));
}

TEST(Bram, WriteReadRoundTrip) {
  sim::Simulation sim;
  Bram bram(sim, "bram", 1024);
  bram.write_word(0, 0xAA995566u);
  bram.write_word(255, 0xDEADBEEFu);
  EXPECT_EQ(bram.read_word(0), 0xAA995566u);
  EXPECT_EQ(bram.read_word(255), 0xDEADBEEFu);
  EXPECT_EQ(bram.reads(), 2u);
  EXPECT_EQ(bram.writes(), 2u);
}

TEST(Bram, OutOfRangeThrows) {
  sim::Simulation sim;
  Bram bram(sim, "bram", 16);
  EXPECT_THROW(bram.write_word(4, 0), std::out_of_range);
  EXPECT_THROW((void)bram.read_word(4), std::out_of_range);
  EXPECT_THROW(Bram(sim, "bad", 0), std::invalid_argument);
  EXPECT_THROW(Bram(sim, "bad", 6), std::invalid_argument);
}

TEST(Bram, LoadPacksBigEndian) {
  sim::Simulation sim;
  Bram bram(sim, "bram", 16);
  Bytes data = {0x01, 0x02, 0x03, 0x04, 0xAA, 0xBB};
  bram.load(data);
  EXPECT_EQ(bram.read_word(0), 0x01020304u);
  EXPECT_EQ(bram.read_word(1), 0xAABB0000u);
}

TEST(Bram, LoadOverflowThrows) {
  sim::Simulation sim;
  Bram bram(sim, "bram", 8);
  Words w = {1, 2, 3};
  EXPECT_THROW(bram.load_words(w, 0), std::out_of_range);
  w.resize(2);
  bram.load_words(w, 0);
  EXPECT_EQ(bram.read_word(1), 2u);
}

TEST(Ddr2, ReadReturnsStoredData) {
  sim::Simulation sim;
  Ddr2 ddr(sim, "ddr", 64_KiB);
  Words data(64);
  for (u32 i = 0; i < 64; ++i) data[i] = i * 3;
  ddr.load_words(data, 100);
  Words out;
  (void)ddr.read_burst(100, 64, out);
  EXPECT_EQ(out, data);
}

TEST(Ddr2, SequentialSlowerThanBram) {
  sim::Simulation sim;
  Ddr2 ddr(sim, "ddr", 1_MiB);
  Words out;
  unsigned cycles = ddr.read_burst(0, 4096, out);
  // BRAM streams 1 word/cycle; DDR2 must be strictly slower.
  EXPECT_GT(cycles, 4096u);
  double wpc = 4096.0 / cycles;
  EXPECT_LT(wpc, 0.75);
  EXPECT_GT(wpc, 0.4);
}

TEST(Ddr2, CalibrationMatchesClosedForm) {
  sim::Simulation sim;
  Ddr2 ddr(sim, "ddr", 4_MiB);
  Words out;
  const std::size_t n = 256 * 1024 / 4;
  unsigned cycles = ddr.read_burst(0, n, out);
  const double measured = static_cast<double>(n) / cycles;
  EXPECT_NEAR(measured, ddr.sequential_words_per_cycle(), 0.03);
}

TEST(Ddr2, MstIcapBandwidthNeighborhood) {
  // Table III: MST_ICAP reaches ~235 MB/s at ~120 MHz => ~0.49 words/cycle.
  sim::Simulation sim;
  Ddr2 ddr(sim, "ddr", 1_MiB);
  const double wpc = ddr.sequential_words_per_cycle();
  const double mbps = wpc * 4.0 * 120e6 / 1e6;
  EXPECT_NEAR(mbps, 235.0, 40.0);
}

TEST(Ddr2, RowMissesTracked) {
  sim::Simulation sim;
  Ddr2 ddr(sim, "ddr", 1_MiB);
  Words out;
  (void)ddr.read_burst(0, 2048, out);  // crosses 4 rows of 512 words
  EXPECT_GE(ddr.row_misses(), 4u);
}

TEST(CompactFlash, StoreAndReadSector) {
  sim::Simulation sim;
  CompactFlash cf(sim, "cf", 64_KiB);
  Bytes img(1024);
  Prng rng(3);
  for (auto& b : img) b = rng.byte();
  cf.store(img, 0);
  Bytes out;
  TimePs t = cf.read_sector(1, out);
  ASSERT_EQ(out.size(), 512u);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), img.begin() + 512));
  EXPECT_GT(t.ps(), 0u);
}

TEST(CompactFlash, ThroughputMatchesPaperMode) {
  // Paper: xps_hwicap from CompactFlash ~= 180 KB/s.
  sim::Simulation sim;
  CompactFlash cf(sim, "cf", 1_MiB);
  const double kbps = cf.sequential_bandwidth().bytes_per_sec() / 1024.0;
  EXPECT_NEAR(kbps, 180.0, 15.0);
}

TEST(CompactFlash, OutOfRangeThrows) {
  sim::Simulation sim;
  CompactFlash cf(sim, "cf", 4096);
  Bytes out;
  EXPECT_THROW((void)cf.read_sector(8, out), std::out_of_range);
  Bytes big(8192);
  EXPECT_THROW(cf.store(big, 0), std::out_of_range);
}

}  // namespace
}  // namespace uparc::mem
