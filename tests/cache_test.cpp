// Unit and integration tests for the bitstream cache hierarchy: content
// keys, eviction policies, tier behaviour, CRC poisoning, transaction
// coherence, the runtime prefetch engine — and regression tests for the
// preload/prefetch accounting fixes (truncated-preload word counts, the
// hidden_fraction denominator, the first-slot prefetch window origin).
#include <gtest/gtest.h>

#include "cache/bitstream_cache.hpp"
#include "cache/prefetch_engine.hpp"
#include "core/system.hpp"
#include "fault/injector.hpp"
#include "manager/preloader.hpp"
#include "sched/prefetch.hpp"

namespace uparc::cache {
namespace {

using namespace uparc::literals;

bits::PartialBitstream make_bs(std::size_t bytes, u64 seed,
                               bits::FrameAddress start = {0, 0, 0, 1, 0}) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  cfg.start_address = start;
  cfg.utilization = 1.0;
  return bits::Generator(cfg).generate();
}

core::SystemConfig cached_config() {
  core::SystemConfig cfg;
  cfg.with_cache = true;
  return cfg;
}

// ----- content keys ---------------------------------------------------------

TEST(CacheKeyTest, RelocatedImageSharesKey) {
  auto bs = make_bs(16_KiB, 7);
  auto rel = bits::relocate(bs, bits::FrameAddress{0, 0, 0, 2, 0});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(key_of(bs), key_of(rel.value()));
  EXPECT_EQ(key_of(bs).origin_far, 0u);  // relocatable: no pinned origin
}

TEST(CacheKeyTest, DistinctContentDistinctKey) {
  EXPECT_NE(key_of(make_bs(16_KiB, 7)), key_of(make_bs(16_KiB, 8)));
}

TEST(CacheKeyTest, CompressedKeyPinnedToOrigin) {
  auto bs = make_bs(16_KiB, 7);
  auto rel = bits::relocate(bs, bits::FrameAddress{0, 0, 0, 2, 0});
  ASSERT_TRUE(rel.ok());
  const CacheKey a = key_of_compressed(bs, 3);
  const CacheKey b = key_of_compressed(rel.value(), 3);
  EXPECT_NE(a, b);  // the container hides the FAR: location-pinned
  EXPECT_NE(a.kind, 0);
  EXPECT_NE(a.origin_far, b.origin_far);
  EXPECT_NE(a, key_of_compressed(bs, 4));  // codec id is part of the key
}

// ----- eviction policies ----------------------------------------------------

TEST(EvictionPolicyTest, LruScoreIsRecency) {
  LruPolicy lru;
  EntryMeta old_entry{.bytes = 1024, .last_use = TimePs::from_us(10)};
  EntryMeta new_entry{.bytes = 1024, .last_use = TimePs::from_us(500)};
  EXPECT_LT(lru.score(old_entry, TimePs::from_ms(1)),
            lru.score(new_entry, TimePs::from_ms(1)));
}

TEST(EvictionPolicyTest, EnergyWeightedPrefersExpensiveRefetches) {
  EnergyWeightedPolicy p;
  // 64 KB at 50 MB/s under the manager's 107 mW active-wait draw.
  sched::EnergyPolicy model;
  EXPECT_NEAR(model.refetch_cost_uj(64 * 1024), 140.25, 1.0);

  EntryMeta big{.bytes = 64 * 1024, .last_use = TimePs(0)};
  EntryMeta small{.bytes = 16 * 1024, .last_use = TimePs(0)};
  EXPECT_GT(p.score(big, TimePs(0)), p.score(small, TimePs(0)));

  // One half-life of staleness halves the score: a dead giant eventually
  // yields to a warm small entry.
  EXPECT_NEAR(p.score(big, TimePs::from_ms(50)), 0.5 * p.score(big, TimePs(0)),
              1e-6 * p.score(big, TimePs(0)));
}

TEST(EvictionPolicyTest, FactoryKnowsBothNames) {
  ASSERT_NE(make_eviction_policy("lru"), nullptr);
  EXPECT_EQ(make_eviction_policy("lru")->name(), "lru");
  ASSERT_NE(make_eviction_policy("energy"), nullptr);
  EXPECT_EQ(make_eviction_policy("energy")->name(), "energy");
  EXPECT_EQ(make_eviction_policy("mru"), nullptr);
}

// ----- cache tiers (unit) ---------------------------------------------------

class BitstreamCacheFixture : public ::testing::Test {
 protected:
  BitstreamCache::Config small_config() {
    BitstreamCache::Config cfg;
    cfg.hot_slots = 2;
    cfg.hot_slot_bytes = 64 * 1024;
    cfg.staging_bytes = 40 * 1024;  // fits two 16 KiB bodies, not three
    return cfg;
  }

  void advance(double us) {
    sim.schedule_in(TimePs::from_us(us), [] {});
    sim.run();
  }

  sim::Simulation sim;
};

TEST_F(BitstreamCacheFixture, StagingHitPromotesToHot) {
  BitstreamCache cache(sim, "cache", small_config());
  auto bs = make_bs(16_KiB, 1);
  const CacheKey key = key_of(bs);
  const bits::FrameAddress origin = bs.frames.front().address;

  EXPECT_FALSE(cache.lookup(key, &origin).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.admit(key, bs.body, bs.body.size() * 4, origin, true);
  EXPECT_TRUE(cache.contains(key));
  EXPECT_EQ(cache.entry_count(), 1u);

  // First hit comes from the DDR2 staging tier and promotes the entry...
  auto served = cache.lookup(key, &origin);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->tier, CacheTier::kStaging);
  EXPECT_EQ(served->words, bs.body);
  EXPECT_FALSE(served->relocated);
  EXPECT_EQ(cache.hits_staging(), 1u);
  EXPECT_EQ(cache.hot_count(), 1u);

  // ...so the second is a BRAM-to-BRAM burst: strictly cheaper.
  auto hot = cache.lookup(key, &origin);
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ(hot->tier, CacheTier::kHot);
  EXPECT_EQ(hot->words, bs.body);
  EXPECT_LT(hot->copy_cycles, served->copy_cycles);
  EXPECT_EQ(cache.hits_hot(), 1u);
  EXPECT_GT(cache.hit_rate(), 0.5);
}

TEST_F(BitstreamCacheFixture, RelocationSharingRewritesTheFar) {
  BitstreamCache cache(sim, "cache", small_config());
  auto bs = make_bs(16_KiB, 2);
  const bits::FrameAddress here = bs.frames.front().address;
  const bits::FrameAddress there{0, 0, 0, 2, 0};
  auto expect = bits::relocate(bs, there);
  ASSERT_TRUE(expect.ok());

  cache.admit(key_of(bs), bs.body, bs.body.size() * 4, here, true);

  // One cached copy serves a different region: the FAR (and CRC) are
  // rewritten on the way out, and the ground-truth frames follow.
  auto served = cache.lookup(key_of(bs), &there);
  ASSERT_TRUE(served.has_value());
  EXPECT_TRUE(served->relocated);
  EXPECT_EQ(served->words, expect.value().body);
  ASSERT_FALSE(served->frames.empty());
  EXPECT_EQ(served->frames.front().address, there);
  EXPECT_EQ(cache.relocations(), 1u);
}

TEST_F(BitstreamCacheFixture, NonRelocatableEntryMissesAtOtherOrigin) {
  BitstreamCache cache(sim, "cache", small_config());
  auto bs = make_bs(16_KiB, 3);
  const bits::FrameAddress here = bs.frames.front().address;
  const bits::FrameAddress there{0, 0, 0, 2, 0};

  cache.admit(key_of(bs), bs.body, bs.body.size() * 4, here, false);
  EXPECT_FALSE(cache.lookup(key_of(bs), &there).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_TRUE(cache.contains(key_of(bs)));  // still valid where it lives
  auto served = cache.lookup(key_of(bs), &here);
  ASSERT_TRUE(served.has_value());
}

TEST_F(BitstreamCacheFixture, PoisonedEntryIsInvalidatedNotServed) {
  BitstreamCache cache(sim, "cache", small_config());
  auto bs = make_bs(16_KiB, 4);
  const bits::FrameAddress origin = bs.frames.front().address;
  cache.admit(key_of(bs), bs.body, bs.body.size() * 4, origin, true);

  // An upset on the staging DRAM read path: the stored CRC no longer
  // matches, so the cache must fall back to a miss and drop the entry —
  // stale-fast is acceptable, wrong never is.
  cache.staging_memory().set_read_tap(
      [](std::size_t addr, u32 v) { return addr == 5 ? v ^ 0x40u : v; });
  EXPECT_FALSE(cache.lookup(key_of(bs), &origin).has_value());
  EXPECT_EQ(cache.poisoned_rejects(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_FALSE(cache.contains(key_of(bs)));
}

TEST_F(BitstreamCacheFixture, CapacityEvictionDropsColdestEntry) {
  BitstreamCache cache(sim, "cache", small_config());
  cache.set_policy(make_eviction_policy("lru"));
  auto a = make_bs(16_KiB, 5);
  auto b = make_bs(16_KiB, 6);
  auto c = make_bs(16_KiB, 7);
  const bits::FrameAddress origin = a.frames.front().address;

  cache.admit(key_of(a), a.body, a.body.size() * 4, origin, true);
  advance(100);
  cache.admit(key_of(b), b.body, b.body.size() * 4, origin, true);
  advance(100);
  ASSERT_TRUE(cache.lookup(key_of(a), &origin).has_value());  // refresh a
  advance(100);

  // The staging tier only holds two bodies: admitting c evicts the
  // least-recently-used entry, which is now b.
  cache.admit(key_of(c), c.body, c.body.size() * 4, origin, true);
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_TRUE(cache.contains(key_of(a)));
  EXPECT_FALSE(cache.contains(key_of(b)));
  EXPECT_TRUE(cache.contains(key_of(c)));
}

TEST_F(BitstreamCacheFixture, HotSlotPressureDemotesNotDrops) {
  BitstreamCache::Config cfg = small_config();
  cfg.hot_slots = 1;
  BitstreamCache cache(sim, "cache", cfg);
  auto a = make_bs(16_KiB, 8);
  auto b = make_bs(16_KiB, 9);
  const bits::FrameAddress origin = a.frames.front().address;

  cache.admit(key_of(a), a.body, a.body.size() * 4, origin, true);
  cache.admit(key_of(b), b.body, b.body.size() * 4, origin, true);
  (void)cache.lookup(key_of(a), &origin);  // staging hit -> a goes hot
  EXPECT_EQ(cache.hot_count(), 1u);
  (void)cache.lookup(key_of(b), &origin);  // b takes the only slot
  EXPECT_EQ(cache.hot_count(), 1u);
  // a lost its slot but not its staging copy.
  EXPECT_TRUE(cache.contains(key_of(a)));
  auto again = cache.lookup(key_of(a), &origin);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->tier, CacheTier::kStaging);
}

TEST_F(BitstreamCacheFixture, InvalidateIsIdempotent) {
  BitstreamCache cache(sim, "cache", small_config());
  auto bs = make_bs(16_KiB, 10);
  cache.admit(key_of(bs), bs.body, bs.body.size() * 4, bs.frames.front().address, true);
  cache.invalidate(key_of(bs));
  EXPECT_FALSE(cache.contains(key_of(bs)));
  cache.invalidate(key_of(bs));  // no-op, no throw
  EXPECT_EQ(cache.entry_count(), 0u);
}

// ----- end-to-end through the controller ------------------------------------

TEST(SystemCacheTest, SecondStageIsServedResident) {
  core::System sys(cached_config());
  auto bs = make_bs(64_KiB, 11);

  ASSERT_TRUE(sys.stage(bs).ok());
  ASSERT_TRUE(sys.reconfigure_blocking().success);
  EXPECT_EQ(sys.uparc().last_stage_tier(), CacheTier::kMiss);
  const TimePs miss_preload = sys.uparc().preloader().last_duration();

  // The image is still in the staging window: re-staging costs only the
  // tag check, not the 50 MB/s external-storage copy.
  ASSERT_TRUE(sys.stage(bs).ok());
  ASSERT_TRUE(sys.reconfigure_blocking().success);
  EXPECT_EQ(sys.uparc().last_stage_tier(), CacheTier::kResident);
  EXPECT_EQ(sys.metrics().counter_value("uparc.cache_resident_hits"), 1.0);
  EXPECT_LT(sys.uparc().preloader().last_duration().ps() * 100, miss_preload.ps());
}

TEST(SystemCacheTest, AlternatingStagesClimbTheTierLadder) {
  core::System sys(cached_config());
  auto a = make_bs(16_KiB, 12);
  auto b = make_bs(16_KiB, 13);

  auto stage = [&](const bits::PartialBitstream& bs) {
    EXPECT_TRUE(sys.stage(bs).ok());
    EXPECT_TRUE(sys.reconfigure_blocking().success);
    return sys.uparc().last_stage_tier();
  };

  EXPECT_EQ(stage(a), CacheTier::kMiss);
  EXPECT_EQ(stage(b), CacheTier::kMiss);
  EXPECT_EQ(stage(a), CacheTier::kStaging);  // admitted on the miss
  EXPECT_EQ(stage(b), CacheTier::kStaging);
  EXPECT_EQ(stage(a), CacheTier::kHot);  // promoted by the staging hit
  EXPECT_EQ(stage(b), CacheTier::kHot);
  EXPECT_EQ(stage(b), CacheTier::kResident);  // still in the window

  ASSERT_NE(sys.cache(), nullptr);
  EXPECT_GT(sys.cache()->hit_rate(), 0.5);
}

TEST(SystemCacheTest, CacheOffIsBypass) {
  core::System sys;
  auto bs = make_bs(16_KiB, 14);
  ASSERT_TRUE(sys.stage(bs).ok());
  ASSERT_TRUE(sys.reconfigure_blocking().success);
  EXPECT_EQ(sys.uparc().last_stage_tier(), CacheTier::kBypass);
  EXPECT_EQ(sys.cache(), nullptr);
}

// ----- transaction coherence ------------------------------------------------

TEST(TxnCacheTest, CommitPromotesTheImage) {
  core::System sys(cached_config());
  auto image = make_bs(16_KiB, 15, {0, 0, 1, 10, 0});
  auto out = sys.run_transaction_blocking("r0", "fft", image);
  ASSERT_TRUE(out.committed);
  EXPECT_TRUE(is_hit(out.stage_cache_tier) ||
              out.stage_cache_tier == CacheTier::kMiss);

  ASSERT_NE(sys.cache(), nullptr);
  EXPECT_TRUE(sys.cache()->contains(key_of(image)));
  EXPECT_GE(sys.cache()->hot_count(), 1u);  // commit pins it hot
}

TEST(TxnCacheTest, RollbackNeverLeavesThePoisonedImageCached) {
  core::System sys(cached_config());
  auto image = make_bs(16_KiB, 16, {0, 0, 1, 10, 0});

  // Abort every forward ICAP burst: the transaction rolls back to blank.
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.arm(fault::FaultSite::kIcapAbort, {.rate = 1.0, .max_fires = 2});
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm(sys.uparc(), sys.icap());

  txn::TxnPolicy policy;
  policy.forward.max_attempts = 2;
  auto out = sys.run_transaction_blocking("r0", "fft", image, policy);
  EXPECT_FALSE(out.committed);

  // The image was admitted on its forward stage, but the rollback proved
  // it bad: no tier may still serve it.
  ASSERT_NE(sys.cache(), nullptr);
  EXPECT_FALSE(sys.cache()->contains(key_of(image)));
}

// ----- prefetch engine ------------------------------------------------------

TEST(PrefetchEngineTest, SpeculativeStageScoresAsHit) {
  core::System sys(cached_config());
  auto image = make_bs(16_KiB, 17);

  sched::TaskSet set;
  auto t = set.add_task({"m", 16 * 1024, TimePs::from_us(100)});
  set.add_activation({t, TimePs(0), TimePs::from_ms(10)});
  sched::Schedule schedule;
  sched::ScheduledSlot slot;
  slot.activation = set.activations()[0];
  slot.reconfig_start = TimePs::from_ms(1);
  slot.reconfig_end = TimePs::from_us(1200);
  schedule.slots.push_back(slot);

  PrefetchEngine engine(sys.sim(), "prefetch", sys.uparc());
  engine.arm(set, schedule, {image});
  EXPECT_EQ(engine.armed(), 1u);
  sys.sim().run();
  EXPECT_EQ(engine.issued(), 1u);

  // The demand stage finds its predicted image already resident.
  ASSERT_TRUE(sys.stage(image).ok());
  EXPECT_EQ(sys.uparc().last_stage_tier(), CacheTier::kResident);
  EXPECT_EQ(sys.uparc().prefetch_hits(), 1u);
  EXPECT_DOUBLE_EQ(engine.accuracy(), 1.0);
  ASSERT_TRUE(sys.reconfigure_blocking().success);
}

TEST(PrefetchEngineTest, WrongPredictionScoresAsMispredict) {
  core::System sys(cached_config());
  auto predicted = make_bs(16_KiB, 18);
  auto actual = make_bs(16_KiB, 19);

  ASSERT_TRUE(sys.uparc().stage_speculative(predicted).ok());
  sys.sim().run();  // speculation lands
  ASSERT_TRUE(sys.stage(actual).ok());
  EXPECT_EQ(sys.uparc().prefetch_mispredicts(), 1u);
  EXPECT_EQ(sys.uparc().prefetch_hits(), 0u);
  ASSERT_TRUE(sys.reconfigure_blocking().success);
}

TEST(PrefetchEngineTest, DemandStageMidDmaCountsOverwritten) {
  core::System sys(cached_config());
  auto predicted = make_bs(16_KiB, 20);
  auto actual = make_bs(16_KiB, 21);

  // Demand arrives while the speculative copy is still on the manager bus:
  // the epoch guard drops the speculation's completion and the demand image
  // wins — counted, because every such event wasted preload bandwidth.
  ASSERT_TRUE(sys.uparc().stage_speculative(predicted).ok());
  ASSERT_TRUE(sys.stage(actual).ok());
  EXPECT_EQ(sys.uparc().prefetch_overwritten(), 1u);
  ASSERT_TRUE(sys.reconfigure_blocking().success);

  // The demand image is the one in the window.
  EXPECT_TRUE(sys.plane().contains(actual.frames));
}

TEST(PrefetchEngineTest, SpeculationRefusedWhileDemandInFlight) {
  core::System sys(cached_config());
  auto demand = make_bs(16_KiB, 22);
  auto spec = make_bs(16_KiB, 23);

  ASSERT_TRUE(sys.stage(demand).ok());  // copy in flight
  auto st = sys.uparc().stage_speculative(spec);
  EXPECT_FALSE(st.ok());
  sys.sim().run();
  ASSERT_TRUE(sys.reconfigure_blocking().success);
  EXPECT_TRUE(sys.plane().contains(demand.frames));
}

TEST(PrefetchEngineTest, EngineSuppressesSlotInsteadOfDisturbingDemand) {
  core::System sys(cached_config());
  auto demand = make_bs(16_KiB, 24);
  auto spec = make_bs(16_KiB, 25);

  sched::TaskSet set;
  auto t = set.add_task({"m", 16 * 1024, TimePs::from_us(100)});
  set.add_activation({t, TimePs(0), TimePs::from_ms(10)});
  sched::Schedule schedule;
  sched::ScheduledSlot slot;
  slot.activation = set.activations()[0];
  slot.reconfig_start = TimePs::from_us(1);  // window too small: fires at t=0
  slot.reconfig_end = TimePs::from_us(300);
  schedule.slots.push_back(slot);

  ASSERT_TRUE(sys.stage(demand).ok());  // demand copy occupies the manager
  PrefetchEngine engine(sys.sim(), "prefetch", sys.uparc());
  engine.arm(set, schedule, {spec});
  sys.sim().run();
  EXPECT_EQ(engine.suppressed(), 1u);
  EXPECT_EQ(engine.issued(), 0u);
  ASSERT_TRUE(sys.reconfigure_blocking().success);
  EXPECT_TRUE(sys.plane().contains(demand.frames));
}

// ----- bugfix regressions ---------------------------------------------------

// Bugfix 1: a truncated preload used to report the *requested* word count
// as preloaded. The copied prefix (plus mode word) is what landed; the
// requested total is tracked separately.
TEST(PreloadAccountingTest, TruncatedPreloadReportsCopiedNotRequested) {
  sim::Simulation sim;
  manager::MicroBlaze mb(sim, "mb");
  mem::Bram bram(sim, "bram", 256_KiB);
  manager::Preloader pre(sim, "pre", mb, bram);

  auto bs = make_bs(16_KiB, 26);
  const std::size_t total = bs.body.size();
  pre.set_truncate_tap([](std::size_t words) { return words / 2; });

  bool done = false;
  ASSERT_TRUE(pre.preload_body(bs.body, [&] { done = true; }).ok());
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(pre.last_copy_complete());

  const std::size_t copied = total / 2;
  EXPECT_EQ(sim.metrics().counter_value("pre.words"),
            static_cast<double>(copied + 1));
  EXPECT_EQ(sim.metrics().counter_value("pre.requested_words"),
            static_cast<double>(total + 1));
  // The header still advertises the full length (that is the torn-file
  // hazard), but only the copied prefix is in the BRAM.
  EXPECT_EQ(manager::BramLayout::payload_words(bram.read_word(0)), total);
  EXPECT_EQ(bram.read_word(copied), bs.body[copied - 1]);
  EXPECT_EQ(bram.read_word(total), 0u);  // stale tail

  // A complete preload keeps both counters in lockstep.
  pre.set_truncate_tap({});
  done = false;
  ASSERT_TRUE(pre.preload_body(bs.body, [&] { done = true; }).ok());
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(pre.last_copy_complete());
  EXPECT_EQ(sim.metrics().counter_value("pre.words"),
            static_cast<double>(copied + 1 + total + 1));
  EXPECT_EQ(sim.metrics().counter_value("pre.requested_words"),
            static_cast<double>(2 * (total + 1)));
}

// Bugfix 2: hidden_fraction() is the fraction of the no-prefetch
// reconfiguration cost hidden — the denominator includes the programming
// time itself, and the degenerate empty schedule hides everything.
TEST(PrefetchMathTest, HiddenFractionIncludesReconfigCost) {
  sched::PrefetchReport report;
  EXPECT_DOUBLE_EQ(report.hidden_fraction(), 1.0);  // empty schedule

  report.serial_penalty = TimePs::from_us(100);
  report.total_exposed = TimePs::from_us(25);
  report.total_reconfig = TimePs::from_us(100);
  // (100 - 25) / (100 + 100): the old preload-only denominator gave 0.75.
  EXPECT_DOUBLE_EQ(report.hidden_fraction(), 0.375);
}

TEST(PrefetchMathTest, EmptyScheduleAnalyzesToFullyHidden) {
  sched::TaskSet set;
  auto report = sched::analyze_prefetch(set, sched::Schedule{});
  EXPECT_TRUE(report.slots.empty());
  EXPECT_DOUBLE_EQ(report.hidden_fraction(), 1.0);
}

// Bugfix 3: the first slot's prefetch window opens at the schedule's actual
// origin (the activation's ready time), not at t=0 — there is nothing to
// preload before the workload exists.
TEST(PrefetchMathTest, FirstSlotWindowOpensAtScheduleOrigin) {
  sched::TaskSet set;
  auto t = set.add_task({"m", 64 * 1024, TimePs::from_us(100)});
  set.add_activation({t, TimePs::from_ms(2), TimePs::from_ms(20)});
  sched::Schedule schedule;
  sched::ScheduledSlot slot;
  slot.activation = set.activations()[0];
  slot.reconfig_start = TimePs::from_us(2050);  // ready + 50 us relock
  slot.reconfig_end = TimePs::from_us(2250);
  schedule.slots.push_back(slot);

  auto report = sched::analyze_prefetch(set, schedule);
  ASSERT_EQ(report.slots.size(), 1u);
  // 64 KB at 50 MB/s is a 1.31 ms preload; only the 50 us before the
  // reconfig hides. The old t=0 window claimed it fully hidden.
  EXPECT_FALSE(report.slots[0].fully_hidden);
  EXPECT_EQ(report.slots[0].preload_start, TimePs::from_ms(2));
  EXPECT_NEAR(report.slots[0].exposed.us(), 1310.72 - 50.0, 1.0);
}

TEST(PrefetchMathTest, ParamsOriginClampsTheWindow) {
  sched::TaskSet set;
  auto t = set.add_task({"m", 64 * 1024, TimePs::from_us(100)});
  set.add_activation({t, TimePs(0), TimePs::from_ms(20)});
  sched::Schedule schedule;
  sched::ScheduledSlot slot;
  slot.activation = set.activations()[0];
  slot.reconfig_start = TimePs::from_us(2050);
  slot.reconfig_end = TimePs::from_us(2250);
  schedule.slots.push_back(slot);

  // Untouched origin: the [0, 2.05 ms] window swallows the 1.31 ms preload.
  auto free_report = sched::analyze_prefetch(set, schedule);
  EXPECT_TRUE(free_report.slots[0].fully_hidden);

  // A late harness start pushes the window open past the hide point.
  sched::PrefetchParams params;
  params.origin = TimePs::from_ms(1);
  auto late = sched::analyze_prefetch(set, schedule, params);
  EXPECT_FALSE(late.slots[0].fully_hidden);
  EXPECT_EQ(late.slots[0].preload_start, TimePs::from_ms(1));
}

}  // namespace
}  // namespace uparc::cache
