// SLO engine: objective grammar round-trips (label values may embed the
// grammar's own separators), multi-window burn-rate alerting with
// hysteresis (no flapping at the threshold), the min-events guard, and
// deterministic replay of the alert log.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"

namespace uparc::obs {
namespace {

// ---------------------------------------------------------------- grammar

TEST(SloGrammar, ParsesLatencyObjectiveWithLabeledSeries) {
  // The series name embeds ',' and '=' inside the label braces — the
  // parser must split on top-level separators only.
  const auto r = parse_objective(
      "guaranteed_p99: hist(serve.latency_us{device=\"fleet\",qos_class=\"guaranteed\"}) "
      "p99 <= 4184");
  ASSERT_TRUE(r.ok()) << r.error().message;
  const SloObjective& o = r.value();
  EXPECT_EQ(o.name, "guaranteed_p99");
  EXPECT_EQ(o.kind, SloKind::kLatency);
  EXPECT_EQ(o.series, "serve.latency_us{device=\"fleet\",qos_class=\"guaranteed\"}");
  EXPECT_DOUBLE_EQ(o.percentile, 99.0);
  EXPECT_EQ(o.cmp, SloCmp::kLe);
  EXPECT_DOUBLE_EQ(o.threshold, 4184.0);
}

TEST(SloGrammar, ParsesRatioAndValueObjectives) {
  const auto ratio = parse_objective(
      "goodput: ratio(serve.goodput.standard, serve.finished.standard) >= 0.9");
  ASSERT_TRUE(ratio.ok());
  EXPECT_EQ(ratio.value().kind, SloKind::kRatio);
  EXPECT_EQ(ratio.value().series, "serve.goodput.standard");
  EXPECT_EQ(ratio.value().denominator, "serve.finished.standard");
  EXPECT_EQ(ratio.value().cmp, SloCmp::kGe);

  const auto value = parse_objective("depth: value(serve.queue_depth) <= 32 budget=0.25");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value().kind, SloKind::kValue);
  EXPECT_DOUBLE_EQ(value.value().budget, 0.25);
}

TEST(SloGrammar, SpecRoundTripsThroughTheParser) {
  for (const char* line : {
           "a: hist(lat{k=\"x,y\"}) p95 <= 10",
           "b: ratio(good, total) >= 0.99",
           "c: ratio(shed, issued) <= 0.2",
           "d: value(depth) >= 1",
       }) {
    const auto first = parse_objective(line);
    ASSERT_TRUE(first.ok()) << line;
    const auto second = parse_objective(first.value().spec());
    ASSERT_TRUE(second.ok()) << first.value().spec();
    EXPECT_EQ(second.value().spec(), first.value().spec());
  }
}

TEST(SloGrammar, RejectsMalformedLines) {
  for (const char* line : {
           "",
           "no_colon hist(x) p99 <= 1",
           "a: hist(x) p99",
           "a: hist(x) pXX <= 1",
           "a: ratio(only_one) >= 0.5",
           "a: blend(x) <= 1",
           "a: value(x) == 1",
           "a: hist(x) p99 <= not_a_number",
       }) {
    EXPECT_FALSE(parse_objective(line).ok()) << "accepted: " << line;
  }
}

// ------------------------------------------------------------- burn rates

/// Telemetry + engine pair with tight windows so tests stay fast:
/// 100us ticks, fast window 200us (2 ticks), slow window 1ms (10 ticks).
struct Rig {
  Registry reg;
  TelemetrySampler sampler;
  SloEngine engine;
  u64 tick = 0;

  Rig()
      : sampler([] {
          TelemetryConfig cfg;
          cfg.interval = TimePs::from_us(100);
          return cfg;
        }()),
        engine([] {
          SloPolicy p;
          p.fast_window = TimePs::from_us(200);
          p.slow_window = TimePs::from_us(1000);
          p.min_events = 4.0;
          return p;
        }()) {
    sampler.add_source(&reg, {});
  }

  void step() {
    const TimePs t = TimePs::from_us(100.0 * static_cast<double>(++tick));
    sampler.sample(t);
    engine.evaluate(t, sampler);
  }
};

TEST(SloEngine, FiresOnSustainedBurnAndResolvesWithHysteresis) {
  Rig rig;
  auto obj = parse_objective("goodput: ratio(good, total) >= 0.9");
  ASSERT_TRUE(obj.ok());
  rig.engine.add_objective(obj.value());

  // Phase A: ratio 0.5 -> burn 5x in every window. Fires exactly once.
  for (int i = 0; i < 15; ++i) {
    rig.reg.counter("total").add(10.0);
    rig.reg.counter("good").add(5.0);
    rig.step();
  }
  EXPECT_EQ(rig.engine.fired(), 1u);
  EXPECT_TRUE(rig.engine.is_firing("goodput"));

  // Phase B: ratio oscillates tightly around the 0.9 target (burn swings
  // ~0.6..1.4 across ticks). With resolve_burn at 0.5 the alert must hold
  // steady — no flapping, no new transitions.
  for (int i = 0; i < 20; ++i) {
    rig.reg.counter("total").add(100.0);
    rig.reg.counter("good").add(i % 2 == 0 ? 86.0 : 94.0);
    rig.step();
  }
  EXPECT_EQ(rig.engine.fired(), 1u) << "alert flapped: refired inside the hysteresis band";
  EXPECT_EQ(rig.engine.resolved(), 0u) << "alert resolved inside the hysteresis band";
  EXPECT_TRUE(rig.engine.is_firing("goodput"));

  // Phase C: fully healthy. Once both windows drain the alert resolves —
  // exactly once.
  for (int i = 0; i < 25; ++i) {
    rig.reg.counter("total").add(100.0);
    rig.reg.counter("good").add(100.0);
    rig.step();
  }
  EXPECT_EQ(rig.engine.fired(), 1u);
  EXPECT_EQ(rig.engine.resolved(), 1u);
  EXPECT_EQ(rig.engine.transitions(), 1u);
  EXPECT_FALSE(rig.engine.any_firing());

  // The log records the complete story in time order.
  ASSERT_EQ(rig.engine.alerts().size(), 2u);
  EXPECT_TRUE(rig.engine.alerts()[0].firing);
  EXPECT_FALSE(rig.engine.alerts()[1].firing);
  EXPECT_LT(rig.engine.alerts()[0].t.ps(), rig.engine.alerts()[1].t.ps());
}

TEST(SloEngine, MinEventsGuardBlocksThinWindows) {
  Rig rig;
  auto obj = parse_objective("goodput: ratio(good, total) >= 0.9");
  ASSERT_TRUE(obj.ok());
  rig.engine.add_objective(obj.value());

  // 2 events per window at ratio 0 would read as a 10x burn — but stays
  // under min_events (4), so the burn is forced to zero and nothing fires.
  for (int i = 0; i < 15; ++i) {
    rig.reg.counter("total").add(2.0);
    rig.step();
  }
  EXPECT_EQ(rig.engine.fired(), 0u);
}

TEST(SloEngine, LatencyObjectiveFiresOnTailShift) {
  Rig rig;
  auto obj = parse_objective("lat_p99: hist(lat) p99 <= 100");
  ASSERT_TRUE(obj.ok());
  rig.engine.add_objective(obj.value());
  auto& h = rig.reg.histogram("lat", Histogram::latency_bounds_us());

  // Healthy tail: everything at 50us.
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 10; ++j) h.observe(50.0);
    rig.step();
  }
  EXPECT_EQ(rig.engine.fired(), 0u);

  // Tail blows out: half the window mass lands at 5000us, far over the 1%
  // budget of a p99 objective.
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 5; ++j) h.observe(50.0);
    for (int j = 0; j < 5; ++j) h.observe(5000.0);
    rig.step();
  }
  EXPECT_EQ(rig.engine.fired(), 1u);
  EXPECT_TRUE(rig.engine.is_firing("lat_p99"));
}

TEST(SloEngine, ValueObjectiveCountsBadTicks) {
  Rig rig;
  auto obj = parse_objective("depth: value(queue_depth) <= 5");
  ASSERT_TRUE(obj.ok());
  rig.engine.add_objective(obj.value());

  for (int i = 0; i < 12; ++i) {
    rig.reg.gauge("queue_depth").set(2.0);
    rig.step();
  }
  EXPECT_EQ(rig.engine.fired(), 0u);
  for (int i = 0; i < 12; ++i) {
    rig.reg.gauge("queue_depth").set(50.0);  // every tick bad: burn 1/0.5 = 2
    rig.step();
  }
  EXPECT_EQ(rig.engine.fired(), 1u);
}

TEST(SloEngine, AlertLogReplaysByteIdentically) {
  auto run = [] {
    Rig rig;
    auto obj = parse_objective("goodput: ratio(good, total) >= 0.9");
    EXPECT_TRUE(obj.ok());
    rig.engine.add_objective(obj.value());
    for (int i = 0; i < 40; ++i) {
      rig.reg.counter("total").add(10.0);
      rig.reg.counter("good").add(i < 15 ? 4.0 : 10.0);
      rig.step();
    }
    return rig.engine.render_json() + "\n" + rig.engine.render_text();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace uparc::obs
