// Tests for the PLB bus model and the register-level HWICAP core + driver,
// including the cross-validation against the cost-calibrated controller.
#include <gtest/gtest.h>

#include "bus/hwicap_driver.hpp"
#include "core/system.hpp"

namespace uparc::bus {
namespace {

using namespace uparc::literals;

class CountingPeripheral : public Peripheral {
 public:
  Status reg_write(u32 offset, u32 value) override {
    last_offset = offset;
    last_value = value;
    ++writes;
    return Status::success();
  }
  Status reg_read(u32 offset, u32& value) override {
    last_offset = offset;
    value = 0xFEEDBEEF;
    ++reads;
    return Status::success();
  }
  u32 last_offset = 0, last_value = 0;
  int writes = 0, reads = 0;
};

TEST(Plb, AddressDecodeAndCosts) {
  sim::Simulation sim;
  PlbBus plb(sim, "plb");
  CountingPeripheral a, b;
  ASSERT_TRUE(plb.attach(0x80000000, 0x200, a).ok());
  ASSERT_TRUE(plb.attach(0x80000200, 0x100, b).ok());

  auto w = plb.write32(0x80000010, 42);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), 5u);
  EXPECT_EQ(a.last_offset, 0x10u);
  EXPECT_EQ(a.last_value, 42u);

  u32 v = 0;
  auto r = plb.read32(0x80000204, v);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7u);
  EXPECT_EQ(v, 0xFEEDBEEFu);
  EXPECT_EQ(b.reads, 1);
  EXPECT_EQ(plb.transactions(), 2u);
}

TEST(Plb, RejectsOverlapsAndUnmapped) {
  sim::Simulation sim;
  PlbBus plb(sim, "plb");
  CountingPeripheral a, b;
  ASSERT_TRUE(plb.attach(0x1000, 0x100, a).ok());
  EXPECT_FALSE(plb.attach(0x1080, 0x100, b).ok());  // overlap
  EXPECT_FALSE(plb.attach(0x2000, 0, b).ok());      // empty
  u32 v;
  EXPECT_FALSE(plb.read32(0x0, v).ok());
  EXPECT_FALSE(plb.write32(0x5000, 1).ok());
}

class HwicapFixture : public ::testing::Test {
 protected:
  HwicapFixture()
      : plane(sim, "plane", bits::kVirtex5Sx50t),
        port(sim, "icap", plane),
        clk(sim, "hwicap_clk", Frequency::mhz(100)),
        core(sim, "hwicap", port, clk),
        plb(sim, "plb"),
        cpu(sim, "mb") {
    EXPECT_TRUE(plb.attach(kBase, HwicapCore::kWindowBytes, core).ok());
  }

  static constexpr u32 kBase = 0x86000000;
  sim::Simulation sim;
  icap::ConfigPlane plane;
  icap::Icap port;
  sim::Clock clk;
  HwicapCore core;
  PlbBus plb;
  manager::MicroBlaze cpu;
};

TEST_F(HwicapFixture, RegisterSemantics) {
  u32 v = 0;
  ASSERT_TRUE(plb.read32(kBase + HwicapCore::kRegWfv, v).ok());
  EXPECT_EQ(v, HwicapCore::kFifoDepth);
  ASSERT_TRUE(plb.read32(kBase + HwicapCore::kRegSr, v).ok());
  EXPECT_EQ(v, HwicapCore::kSrDone);  // idle

  ASSERT_TRUE(plb.write32(kBase + HwicapCore::kRegWf, bits::kDummyWord).ok());
  ASSERT_TRUE(plb.read32(kBase + HwicapCore::kRegWfv, v).ok());
  EXPECT_EQ(v, HwicapCore::kFifoDepth - 1);

  EXPECT_FALSE(plb.write32(kBase + HwicapCore::kRegSr, 1).ok());   // read-only
  EXPECT_FALSE(plb.write32(kBase + 0x44, 1).ok());                 // unmapped
  u32 x;
  EXPECT_FALSE(plb.read32(kBase + 0x44, x).ok());
}

TEST_F(HwicapFixture, FifoOverflowRejected) {
  for (std::size_t i = 0; i < HwicapCore::kFifoDepth; ++i) {
    ASSERT_TRUE(plb.write32(kBase + HwicapCore::kRegWf, 0).ok());
  }
  EXPECT_FALSE(plb.write32(kBase + HwicapCore::kRegWf, 0).ok());
}

TEST_F(HwicapFixture, TransferDrainsFifoIntoIcap) {
  // Feed the beginning of a real bitstream through the FIFO.
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 4_KiB;
  auto bs = bits::Generator(cfg).generate();
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(plb.write32(kBase + HwicapCore::kRegWf, bs.body[i]).ok());
  }
  ASSERT_TRUE(plb.write32(kBase + HwicapCore::kRegCr, HwicapCore::kCrWrite).ok());
  EXPECT_TRUE(core.transfer_active());
  sim.run();
  EXPECT_FALSE(core.transfer_active());
  EXPECT_EQ(core.words_to_icap(), 32u);
  EXPECT_EQ(core.fifo_level(), 0u);
  u32 sr = 0;
  ASSERT_TRUE(plb.read32(kBase + HwicapCore::kRegSr, sr).ok());
  EXPECT_EQ(sr, HwicapCore::kSrDone);
}

TEST_F(HwicapFixture, DriverDeliversFullBitstream) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 64_KiB;
  auto bs = bits::Generator(cfg).generate();

  HwicapDriver driver(cpu, plb, kBase);
  std::optional<HwicapDriveResult> result;
  driver.configure(bs.body, [&](const HwicapDriveResult& r) { result = r; });
  EXPECT_THROW(driver.configure(bs.body, [](const HwicapDriveResult&) {}),
               std::logic_error);
  sim.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->success) << result->error;
  EXPECT_TRUE(port.done());
  EXPECT_TRUE(plane.contains(bs.frames));
}

TEST_F(HwicapFixture, RegisterLevelThroughputMatchesTable3) {
  // The register-level model must land on the measured 14.5 MB/s — the same
  // number the cost-calibrated XpsHwicap reproduces — tying the two models
  // together.
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 128_KiB;
  auto bs = bits::Generator(cfg).generate();

  HwicapDriver driver(cpu, plb, kBase);
  std::optional<HwicapDriveResult> result;
  driver.configure(bs.body, [&](const HwicapDriveResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result && result->success);
  EXPECT_NEAR(result->bandwidth().mb_per_sec(), 14.5, 2.0);
}

}  // namespace
}  // namespace uparc::bus
