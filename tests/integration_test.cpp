// Cross-module integration tests: full systems, repeated reconfigurations,
// mixed controllers on one plane, VCD tracing of a live run, file-level
// round trips through the whole stack.
#include <gtest/gtest.h>

#include "bitstream/parser.hpp"
#include "bitstream/writer.hpp"
#include "core/system.hpp"
#include "sim/vcd.hpp"

namespace uparc {
namespace {

using namespace uparc::literals;

bits::PartialBitstream make_bs(std::size_t bytes, u64 seed,
                               bits::FrameAddress start = {0, 0, 0, 10, 0}) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  cfg.start_address = start;
  return bits::Generator(cfg).generate();
}

TEST(Integration, FileToConfigPlaneThroughEveryLayer) {
  // Generate -> serialize to .bit -> parse -> preload from file -> stream
  // through UReC -> verify the plane matches the original frames.
  auto bs = make_bs(48_KiB, 7);
  Bytes file = bits::to_file(bs);

  // Host-side sanity: the file parses to the same frames.
  auto parsed = bits::parse_file(bits::kVirtex5Sx50t, file);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().body.frames.size(), bs.frames.size());

  core::System sys;
  bool preloaded = false;
  auto st = sys.uparc().preloader().preload_file(file, [&] { preloaded = true; });
  ASSERT_TRUE(st.ok()) << st.error().message;
  sys.sim().run();
  ASSERT_TRUE(preloaded);

  // Drive UReC directly (bypassing stage(), which re-preloads).
  bool finished = false;
  sys.uparc().urec().start([&] { finished = true; });
  sys.sim().run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(sys.uparc().urec().state(), core::UrecState::kFinished);
  EXPECT_TRUE(sys.plane().contains(bs.frames));
}

TEST(Integration, BackToBackReconfigurationsOfDifferentModules) {
  core::System sys;
  (void)sys.set_frequency_blocking(Frequency::mhz(300));

  std::vector<bits::PartialBitstream> modules;
  for (u64 i = 0; i < 5; ++i) {
    modules.push_back(
        make_bs(32_KiB + i * 16_KiB, 100 + i,
                bits::FrameAddress{0, 0, static_cast<u32>(i), 10, 0}));
  }
  for (const auto& m : modules) {
    ASSERT_TRUE(sys.stage(m).ok());
    auto r = sys.reconfigure_blocking();
    ASSERT_TRUE(r.success) << r.error;
  }
  // All five modules coexist in the plane (distinct rows).
  for (const auto& m : modules) EXPECT_TRUE(sys.plane().contains(m.frames));
}

TEST(Integration, FrequencyRetuneBetweenReconfigurations) {
  core::System sys;
  auto bs = make_bs(64_KiB, 9);
  double last_us = 0;
  for (double mhz : {100.0, 200.0, 362.5}) {
    ASSERT_TRUE(sys.set_frequency_blocking(Frequency::mhz(mhz)).has_value());
    ASSERT_TRUE(sys.stage(bs).ok());
    auto r = sys.reconfigure_blocking();
    ASSERT_TRUE(r.success) << r.error;
    if (last_us > 0) {
      EXPECT_LT(r.duration().us(), last_us);  // faster each step
    }
    last_us = r.duration().us();
  }
}

TEST(Integration, MixedControllersShareOnePlane) {
  core::System sys;
  auto region_a = make_bs(32_KiB, 21, bits::FrameAddress{0, 0, 0, 20, 0});
  auto region_b = make_bs(32_KiB, 22, bits::FrameAddress{0, 0, 2, 40, 0});

  // Region A through the slow baseline, region B through UPaRC.
  auto xps = sys.make_baseline("xps_hwicap_cached");
  auto ra = sys.run_controller_blocking(*xps, region_a);
  ASSERT_TRUE(ra.success) << ra.error;

  ASSERT_TRUE(sys.stage(region_b).ok());
  auto rb = sys.reconfigure_blocking();
  ASSERT_TRUE(rb.success) << rb.error;

  EXPECT_TRUE(sys.plane().contains(region_a.frames));
  EXPECT_TRUE(sys.plane().contains(region_b.frames));
  EXPECT_GT(ra.duration().ms(), rb.duration().ms() * 10);  // UPaRC >>10x faster
}

TEST(Integration, CorruptedPreloadIsCaughtByIcapCrc) {
  core::System sys;
  auto bs = make_bs(32_KiB, 13);
  ASSERT_TRUE(sys.stage(bs).ok());
  sys.sim().run();  // let the preload finish
  // Flip one configuration bit inside the BRAM (model of an SEU in the
  // bitstream store between preload and reconfiguration).
  const std::size_t victim = 1 + bs.fdri_offset + 100;
  sys.uparc().bram().write_word(victim, sys.uparc().bram().read_word(victim) ^ 0x1);

  auto r = sys.reconfigure_blocking();
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("CRC"), std::string::npos);
}

TEST(Integration, VcdTraceOfAReconfiguration) {
  core::System sys;
  auto bs = make_bs(8_KiB, 3);

  sim::VcdWriter vcd("uparc_run");
  auto sig_busy = vcd.add_signal("urec_busy", 1);
  auto sig_words = vcd.add_signal("icap_words", 32);

  ASSERT_TRUE(sys.stage(bs).ok());
  std::optional<ctrl::ReconfigResult> result;
  sys.uparc().reconfigure([&](const ctrl::ReconfigResult& r) { result = r; });
  // Sample the signals as the simulation advances.
  while (sys.sim().step()) {
    vcd.change(sig_busy, sys.sim().now(), sys.uparc().urec().busy() ? 1 : 0);
    vcd.change(sig_words, sys.sim().now(), sys.icap().words_consumed());
  }
  ASSERT_TRUE(result && result->success);
  EXPECT_GT(vcd.change_count(), 100u);
  const std::string doc = vcd.render();
  EXPECT_NE(doc.find("urec_busy"), std::string::npos);
  EXPECT_NE(doc.find("$enddefinitions"), std::string::npos);
}

TEST(Integration, EnergyScalesWithBitstreamSize) {
  core::System sys;
  (void)sys.set_frequency_blocking(Frequency::mhz(200));
  double e_small = 0, e_large = 0;
  {
    ASSERT_TRUE(sys.stage(make_bs(32_KiB, 1)).ok());
    e_small = sys.reconfigure_blocking().energy_uj;
  }
  {
    ASSERT_TRUE(sys.stage(make_bs(128_KiB, 2)).ok());
    e_large = sys.reconfigure_blocking().energy_uj;
  }
  EXPECT_GT(e_large, e_small * 3.0);
  EXPECT_LT(e_large, e_small * 5.0);  // ~4x payload => ~4x energy
}

TEST(Integration, V6SystemRunsCompleteFlow) {
  core::SystemConfig cfg;
  cfg.uparc.device = bits::kVirtex6Lx240t;
  core::System sys(cfg);

  bits::GeneratorConfig gen;
  gen.device = bits::kVirtex6Lx240t;
  gen.target_body_bytes = 64_KiB;
  auto bs = bits::Generator(gen).generate();

  ASSERT_TRUE(sys.stage(bs).ok());
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(bs.frames));
}

TEST(Integration, StageWhileBusyIsRejected) {
  core::System sys;
  auto bs = make_bs(64_KiB, 1);
  ASSERT_TRUE(sys.stage(bs).ok());
  std::optional<ctrl::ReconfigResult> result;
  sys.uparc().reconfigure([&](const ctrl::ReconfigResult& r) { result = r; });
  // Drive the sim until the UReC is actually streaming, then try to stage.
  bool rejected_mid_flight = false;
  while (sys.sim().step()) {
    if (sys.uparc().urec().busy() && !rejected_mid_flight) {
      auto st = sys.stage(bs);
      EXPECT_FALSE(st.ok());
      rejected_mid_flight = true;
    }
  }
  EXPECT_TRUE(rejected_mid_flight);
  ASSERT_TRUE(result && result->success);
}

}  // namespace
}  // namespace uparc
