// Observability layer: metrics registry (histogram percentiles in
// particular), span tracer nesting, Chrome trace export (golden), and the
// end-to-end traced reconfiguration (category coverage + cycle
// reconciliation against the reported reconfiguration time).
#include <gtest/gtest.h>

#include <algorithm>

#include "bitstream/generator.hpp"
#include "core/system.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace uparc::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryPercentile) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(42.0);
  EXPECT_DOUBLE_EQ(h.p50(), 42.0);
  EXPECT_DOUBLE_EQ(h.p95(), 42.0);
  EXPECT_DOUBLE_EQ(h.p99(), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, SaturatedOverflowBucketStaysInObservedRange) {
  // Every sample lands past the last bound; the estimate must stay inside
  // the observed range instead of inventing mass beyond it.
  Histogram h({1.0, 2.0});
  h.observe(5.0);
  h.observe(7.0);
  h.observe(9.0);
  EXPECT_GE(h.p50(), 5.0);
  EXPECT_LE(h.p50(), 9.0);
  EXPECT_GE(h.p99(), 5.0);
  EXPECT_LE(h.p99(), 9.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 9.0);  // exact observed max
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[2], 3u);  // all in overflow
}

TEST(Histogram, PercentilesAreMonotoneAndBucketAccurate) {
  Histogram h;  // default bounds: 1, 2, 4, ..., 2^20
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  // The 50th sample sits in the (32, 64] bucket.
  EXPECT_GE(h.p50(), 32.0);
  EXPECT_LE(h.p50(), 64.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, InstrumentReferencesAreStable) {
  Registry reg;
  Counter& a = reg.counter("a");
  // Creating many more instruments must not invalidate the reference.
  for (int i = 0; i < 100; ++i) (void)reg.counter("c" + std::to_string(i));
  a.add(3.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("a"), 3.0);
  EXPECT_TRUE(reg.has_counter("a"));
  EXPECT_FALSE(reg.has_counter("missing"));
  EXPECT_DOUBLE_EQ(reg.counter_value("missing"), 0.0);
}

TEST(Registry, MeterRatesUseTheSimulatedWindow) {
  Registry reg;
  Meter& m = reg.meter("bytes");
  m.add(100.0, TimePs::from_us(1));
  EXPECT_DOUBLE_EQ(m.per_second(), 0.0);  // single point: no window yet
  m.add(300.0, TimePs::from_us(3));
  EXPECT_DOUBLE_EQ(m.total(), 400.0);
  EXPECT_NEAR(m.per_second(), 400.0 / 2e-6, 1.0);
}

TEST(Registry, RendersTextAndJson) {
  Registry reg;
  reg.counter("icap.words").add(12290);
  reg.gauge("clk2_mhz").set(362.5);
  reg.histogram("lat", {10.0, 100.0}).observe(42.0);
  reg.meter("bytes").add(4096.0, TimePs::from_us(2));

  const std::string text = reg.render_text();
  EXPECT_NE(text.find("icap.words = 12290"), std::string::npos);
  EXPECT_NE(text.find("clk2_mhz = 362.5"), std::string::npos);
  EXPECT_NE(text.find("lat: count=1"), std::string::npos);

  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"icap.words\": 12290"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"meters\""), std::string::npos);
}

// ----------------------------------------------------------------- labels

TEST(Labels, CanonicalNameSortsKeysAndKeepsLastDuplicate) {
  const std::string a = labeled_name("lat", {{"qos", "std"}, {"device", "d1"}});
  const std::string b = labeled_name("lat", {{"device", "d1"}, {"qos", "std"}});
  EXPECT_EQ(a, b) << "label order must not change the canonical name";
  EXPECT_EQ(a, "lat{device=\"d1\",qos=\"std\"}");
  EXPECT_EQ(labeled_name("lat", {{"k", "old"}, {"k", "new"}}), "lat{k=\"new\"}");
  EXPECT_EQ(labeled_name("lat", {}), "lat");
}

TEST(Labels, AdversarialValuesRoundTrip) {
  // Every structural character of the name grammar, embedded in a value:
  // braces, comma, equals, quote, backslash, control chars, plus a key
  // that itself needs escaping. Rendering then parsing must return the
  // exact original labels, and the rendered name must stay brace-balanced
  // (one '{', one '}' outside escapes) so downstream name parsers work.
  const std::vector<Label> nasty = {
      {"k", "a=\"b\",c"},
      {"path", "x{y}z"},
      {"quote\\key", "\\ \" \n \t"},
      {"empty", ""},
  };
  const std::string name = labeled_name("m", nasty);
  const ParsedName parsed = parse_labeled_name(name);
  EXPECT_EQ(parsed.base, "m");
  ASSERT_EQ(parsed.labels.size(), nasty.size());
  for (const Label& l : nasty) {
    EXPECT_EQ(parsed.value_of(l.key), l.value) << "key " << l.key;
  }
  // Structural scan: exactly one unescaped brace pair.
  int open = 0, close = 0;
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (name[i] == '\\') { ++i; continue; }
    if (name[i] == '{') ++open;
    if (name[i] == '}') ++close;
  }
  EXPECT_EQ(open, 1);
  EXPECT_EQ(close, 1);
}

TEST(Labels, MalformedSuffixFallsBackToBaseName) {
  for (const char* name : {"m{", "m{k=", "m{k=\"v}", "m{k='v'}", "m{unquoted}", "m}"}) {
    const ParsedName parsed = parse_labeled_name(name);
    EXPECT_EQ(parsed.base, name) << "malformed suffix must not be half-parsed";
    EXPECT_TRUE(parsed.labels.empty());
  }
}

TEST(Labels, WithoutRemovesOneKeyAndRecanonicalizes) {
  const std::string name =
      labeled_name("lat", {{"device", "d0"}, {"qos_class", "std"}, {"tenant", "t0"}});
  const ParsedName parsed = parse_labeled_name(name);
  EXPECT_EQ(parsed.without("device"), "lat{qos_class=\"std\",tenant=\"t0\"}");
  EXPECT_EQ(parsed.without("absent"), name);
}

TEST(Labels, RegistryRendersAdversarialLabelsAsValidJson) {
  Registry reg;
  const std::string name = labeled_name(
      "serve.latency_us", {{"device", "d\"0\""}, {"tenant", "a,b={c}"}});
  reg.counter(name).add(1.0);
  const std::string json = reg.render_json();
  // The escaped name appears exactly once as a key, and the document stays
  // structurally sound: every quote inside the key is backslashed, so a
  // dumb quote-scanner sees balanced strings.
  EXPECT_NE(json.find(json_escape(name)), std::string::npos);
  int quotes = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '\\') { ++i; continue; }
    if (json[i] == '"') ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0) << "unbalanced quotes: a label escaped the string literal";
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, ParentIsInnermostOpenSpan) {
  sim::Simulation sim;
  Tracer tr(sim);
  const SpanId outer = tr.begin("outer", "a");
  const SpanId mid = tr.begin("mid", "b");
  const SpanId inner = tr.begin("inner", "c");
  ASSERT_EQ(tr.spans().size(), 3u);
  EXPECT_EQ(tr.spans()[0].parent, kNoSpan);
  EXPECT_EQ(tr.spans()[1].parent, outer);
  EXPECT_EQ(tr.spans()[2].parent, mid);
  EXPECT_EQ(tr.current(), inner);
  tr.end(inner);
  tr.end(mid);
  tr.end(outer);
  EXPECT_EQ(tr.current(), kNoSpan);
}

TEST(Tracer, EndToleratesOutOfOrderAndStaleIds) {
  sim::Simulation sim;
  Tracer tr(sim);
  const SpanId a = tr.begin("a", "x");
  const SpanId b = tr.begin("b", "x");
  tr.end(a);  // close the *outer* one first (async phases overlap like this)
  const SpanId c = tr.begin("c", "x");
  EXPECT_EQ(tr.spans()[2].parent, b);  // a is no longer on the open stack
  tr.end(kNoSpan);                     // no-op
  tr.end(a);                           // idempotent
  tr.end(999999);                      // unknown: no-op
  tr.end_all();
  for (const SpanRecord& s : tr.spans()) EXPECT_FALSE(s.open);
  (void)c;
}

TEST(Tracer, CategoryTotalSkipsSameCategoryNesting) {
  sim::Simulation sim;
  Tracer tr(sim);
  SpanId outer = tr.begin("outer", "x");
  SpanId inner = kNoSpan;
  SpanId other = kNoSpan;
  sim.schedule_at(TimePs::from_us(2), [&] {
    inner = tr.begin("inner", "x");   // same category: residency not doubled
    other = tr.begin("other", "y");
  });
  sim.schedule_at(TimePs::from_us(5), [&] {
    tr.end(other);
    tr.end(inner);
  });
  sim.schedule_at(TimePs::from_us(10), [&] { tr.end(outer); });
  sim.run();
  EXPECT_DOUBLE_EQ(tr.category_total("x").us(), 10.0);
  EXPECT_DOUBLE_EQ(tr.category_total("y").us(), 3.0);
  EXPECT_EQ(tr.categories(), (std::vector<std::string>{"x", "y"}));
}

TEST(Tracer, EnergyProbeAttributesAtSpanEnd) {
  sim::Simulation sim;
  Tracer tr(sim);
  tr.set_energy_probe([](TimePs t0, TimePs t1) { return (t1 - t0).us() * 2.0; });
  SpanId s = tr.begin("s", "x");
  sim.schedule_at(TimePs::from_us(4), [&] { tr.end(s); });
  sim.run();
  EXPECT_DOUBLE_EQ(tr.spans()[0].energy_uj, 8.0);
  EXPECT_DOUBLE_EQ(tr.category_energy_uj("x"), 8.0);
}

TEST(Tracer, ScopedSpanEndsOnDestruction) {
  sim::Simulation sim;
  Tracer tr(sim);
  {
    auto sp = tr.scoped("sync", "lint");
    sp.arg("ok", true);
  }
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_FALSE(tr.spans()[0].open);
  EXPECT_EQ(tr.spans()[0].name, "sync");
}

// ----------------------------------------------------- chrome trace export

TEST(ChromeTrace, GoldenExport) {
  sim::Simulation sim;
  Tracer tr(sim);
  const SpanId outer = tr.begin("outer", "alpha");
  SpanId inner = kNoSpan;
  sim.schedule_at(TimePs::from_us(2), [&] {
    inner = tr.begin("inner", "beta");
    tr.arg(inner, "words", 12.0);
    tr.arg(inner, "mode", "direct");
    tr.arg(inner, "ok", true);
  });
  sim.schedule_at(TimePs::from_us(5), [&] { tr.end(inner); });
  sim.schedule_at(TimePs::from_us(9), [&] {
    tr.end(outer);
    tr.instant("mark", "beta");
    tr.counter("mw", sim.now(), 5.5);
  });
  sim.run();

  const std::string expected =
      "{\"traceEvents\": [\n"
      "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 1, \"name\": \"thread_name\", "
      "\"args\": {\"name\": \"alpha\"}},\n"
      "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 2, \"name\": \"thread_name\", "
      "\"args\": {\"name\": \"beta\"}},\n"
      "  {\"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"name\": \"outer\", \"cat\": \"alpha\", "
      "\"ts\": 0.000000, \"dur\": 9.000000, \"args\": {}},\n"
      "  {\"ph\": \"X\", \"pid\": 1, \"tid\": 2, \"name\": \"inner\", \"cat\": \"beta\", "
      "\"ts\": 2.000000, \"dur\": 3.000000, \"args\": {\"words\": 12, \"mode\": \"direct\", "
      "\"ok\": true}},\n"
      "  {\"ph\": \"i\", \"pid\": 1, \"tid\": 2, \"name\": \"mark\", \"cat\": \"beta\", "
      "\"ts\": 9.000000, \"s\": \"t\"},\n"
      "  {\"ph\": \"C\", \"pid\": 1, \"name\": \"mw\", \"ts\": 9.000000, "
      "\"args\": {\"mw\": 5.5}}\n"
      "], \"displayTimeUnit\": \"ns\"}\n";
  EXPECT_EQ(to_chrome_trace(tr), expected);
}

TEST(ChromeTrace, OpenSpansCloseAtNowAndExtraTracksRide) {
  sim::Simulation sim;
  Tracer tr(sim);
  (void)tr.begin("dangling", "a");
  sim.schedule_at(TimePs::from_us(3), [] {});
  sim.run();
  CounterTrack track;
  track.name = "vccint_mw";
  track.samples.push_back({TimePs::from_us(1), 120.0});
  const std::string json = to_chrome_trace(tr, {track});
  EXPECT_NE(json.find("\"dur\": 3.000000"), std::string::npos);
  EXPECT_NE(json.find("\"vccint_mw\": 120"), std::string::npos);
}

// ------------------------------------------------- end-to-end traced run

TEST(TracedSystem, CompressedRunCoversTheWholePathAndReconciles) {
  // A body larger than the 256 KB BRAM forces compressed mode, so the trace
  // must cover preloading, lint, staging (offline compression), control,
  // UReC, the decompressor, the ICAP and the clocking subsystem.
  bits::GeneratorConfig gen;
  gen.target_body_bytes = 300 * 1024;
  gen.seed = 7;
  const bits::PartialBitstream bs = bits::Generator(gen).generate();

  core::SystemConfig cfg;
  cfg.trace = true;
  core::System sys(cfg);
  ASSERT_NE(sys.tracer(), nullptr);
  (void)sys.set_frequency_blocking(Frequency::mhz(200));
  ASSERT_TRUE(sys.stage(bs).ok());
  const auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;

  const Tracer& tr = *sys.tracer();
  const std::vector<std::string> cats = tr.categories();
  for (const char* expect :
       {"preload", "lint", "stage", "control", "urec", "decompress", "icap", "clocking"}) {
    EXPECT_NE(std::find(cats.begin(), cats.end(), expect), cats.end())
        << "missing category " << expect;
  }
  EXPECT_GE(cats.size(), 6u);

  // Reconciliation: the control span wraps the whole reconfiguration, so
  // its residency must match the reported end-to-end time within 1%.
  const double total_us = r.duration().us();
  ASSERT_GT(total_us, 0.0);
  EXPECT_NEAR(tr.category_total("control").us(), total_us, total_us * 0.01);
  // And the streaming phases are contained in it.
  EXPECT_LE(tr.category_total("urec").us(), total_us);
  EXPECT_LE(tr.category_total("icap").us(), total_us * 1.01);

  // The exported JSON carries the power rail as a counter track.
  const std::string json = sys.trace_json();
  EXPECT_NE(json.find("\"vccint_mw\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  // Metrics absorbed the word-level accounting.
  EXPECT_DOUBLE_EQ(sys.metrics().counter_value("uparc.urec.words_to_icap"),
                   static_cast<double>(bs.body.size()));
  EXPECT_GT(sys.metrics().counter_value("icap.frames"), 0.0);
  EXPECT_GT(sys.metrics().counter_value("uparc.decomp.words_out"), 0.0);
}

TEST(TracedSystem, TracingOffMeansNoTracerAndEmptyExport) {
  core::System sys;  // default: trace off
  EXPECT_EQ(sys.tracer(), nullptr);
  EXPECT_EQ(sys.trace_json(), "{}");
}

}  // namespace
}  // namespace uparc::obs
