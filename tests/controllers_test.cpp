// Unit tests for the five baseline reconfiguration controllers: delivered
// data correctness plus bandwidth calibration against Table III.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace uparc::ctrl {
namespace {

using namespace uparc::literals;

bits::PartialBitstream make_bs(std::size_t bytes, u64 seed = 1) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  return bits::Generator(cfg).generate();
}

class Baselines : public ::testing::Test {
 protected:
  core::System sys;

  ReconfigResult run(std::string_view kind, const bits::PartialBitstream& bs) {
    auto c = sys.make_baseline(kind);
    EXPECT_NE(c, nullptr) << kind;
    return sys.run_controller_blocking(*c, bs);
  }
};

TEST_F(Baselines, AllDeliverIdenticalConfiguration) {
  auto bs = make_bs(64_KiB);
  for (const char* kind : {"xps_hwicap_cached", "BRAM_HWICAP", "MST_ICAP", "FaRM", "FlashCAP"}) {
    sys.plane().clear();
    auto r = run(kind, bs);
    EXPECT_TRUE(r.success) << kind << ": " << r.error;
    EXPECT_TRUE(sys.plane().contains(bs.frames)) << kind;
    EXPECT_EQ(r.payload_bytes, bs.body.size() * 4) << kind;
  }
}

TEST_F(Baselines, XpsCachedBandwidthNearPaper) {
  auto r = run("xps_hwicap_cached", make_bs(128_KiB));
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 14.5, 1.0);  // Table III
}

TEST_F(Baselines, XpsCompactFlashAt180KBps) {
  auto r = run("xps_hwicap_cf", make_bs(16_KiB));
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NEAR(r.bandwidth().bytes_per_sec() / 1024.0, 180.0, 15.0);  // paper §IV
}

TEST_F(Baselines, XpsUnoptimizedAt1_5MBps) {
  auto r = run("xps_hwicap_unopt", make_bs(64_KiB));
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 1.5, 0.1);  // paper §V
}

TEST_F(Baselines, BramHwicapBandwidthNearPaper) {
  auto r = run("BRAM_HWICAP", make_bs(128_KiB));
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 371.0, 12.0);  // Table III
}

TEST_F(Baselines, BramHwicapRejectsOversize) {
  auto c = sys.make_baseline("BRAM_HWICAP");
  auto st = c->stage(make_bs(300_KiB));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("exceeds"), std::string::npos);
}

TEST_F(Baselines, MstIcapBandwidthNearPaper) {
  auto r = run("MST_ICAP", make_bs(256_KiB));
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 235.0, 20.0);  // Table III
}

TEST_F(Baselines, MstIcapHandlesLargeBitstreams) {
  auto r = run("MST_ICAP", make_bs(1200_KiB, 5));
  EXPECT_TRUE(r.success) << r.error;
}

TEST_F(Baselines, FarmBandwidthNearPaper) {
  auto r = run("FaRM", make_bs(128_KiB));
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 800.0, 15.0);  // Table III
}

TEST_F(Baselines, FarmCompressesWhenOversized) {
  auto c = sys.make_baseline("FaRM");
  auto* farm = dynamic_cast<Farm*>(c.get());
  ASSERT_NE(farm, nullptr);
  auto bs = make_bs(400_KiB, 3);
  auto st = c->stage(bs);
  ASSERT_TRUE(st.ok()) << st.error().message;
  EXPECT_TRUE(farm->staged_compressed());
  auto r = sys.run_controller_blocking(*c, bs);
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(bs.frames));
}

TEST_F(Baselines, FlashCapBandwidthNearPaper) {
  auto r = run("FlashCAP", make_bs(128_KiB));
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 358.0, 12.0);  // Table III
}

TEST_F(Baselines, FlashCapStoresCompressed) {
  auto c = sys.make_baseline("FlashCAP");
  auto* fc = dynamic_cast<FlashCap*>(c.get());
  ASSERT_NE(fc, nullptr);
  auto bs = make_bs(128_KiB);
  ASSERT_TRUE(c->stage(bs).ok());
  EXPECT_LT(fc->flash_bytes_used(), bs.body.size() * 4 / 2);  // > 50% saved
}

TEST_F(Baselines, ReconfigureWithoutStageFails) {
  for (const char* kind : {"xps_hwicap_cached", "BRAM_HWICAP", "MST_ICAP", "FaRM", "FlashCAP"}) {
    auto c = sys.make_baseline(kind);
    std::optional<ReconfigResult> got;
    c->reconfigure([&](const ReconfigResult& r) { got = r; });
    sys.sim().run();
    ASSERT_TRUE(got.has_value()) << kind;
    EXPECT_FALSE(got->success) << kind;
    EXPECT_NE(got->error.find("without stage"), std::string::npos) << kind;
  }
}

TEST_F(Baselines, CapacityClassesMatchTable3) {
  EXPECT_EQ(sys.make_baseline("xps_hwicap_cached")->capacity_class(),
            CapacityClass::kExcellent);
  EXPECT_EQ(sys.make_baseline("MST_ICAP")->capacity_class(), CapacityClass::kExcellent);
  EXPECT_EQ(sys.make_baseline("BRAM_HWICAP")->capacity_class(), CapacityClass::kLimited);
  EXPECT_EQ(sys.make_baseline("FaRM")->capacity_class(), CapacityClass::kGood);
  EXPECT_EQ(sys.make_baseline("FlashCAP")->capacity_class(), CapacityClass::kGood);
  EXPECT_EQ(sys.make_baseline("nonsense"), nullptr);
}

TEST_F(Baselines, MaxFrequenciesMatchTable3) {
  EXPECT_NEAR(sys.make_baseline("xps_hwicap_cached")->max_frequency().in_mhz(), 120, 1e-9);
  EXPECT_NEAR(sys.make_baseline("BRAM_HWICAP")->max_frequency().in_mhz(), 120, 1e-9);
  EXPECT_NEAR(sys.make_baseline("MST_ICAP")->max_frequency().in_mhz(), 120, 1e-9);
  EXPECT_NEAR(sys.make_baseline("FaRM")->max_frequency().in_mhz(), 200, 1e-9);
  EXPECT_NEAR(sys.make_baseline("FlashCAP")->max_frequency().in_mhz(), 120, 1e-9);
}

TEST(CapacitySymbols, MatchPaperNotation) {
  EXPECT_STREQ(to_symbol(CapacityClass::kLimited), "-");
  EXPECT_STREQ(to_symbol(CapacityClass::kGood), "++");
  EXPECT_STREQ(to_symbol(CapacityClass::kExcellent), "+++");
}

}  // namespace
}  // namespace uparc::ctrl
