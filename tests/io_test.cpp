// Unit tests for whole-file I/O helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/io.hpp"
#include "common/prng.hpp"

namespace uparc {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Io, WriteReadRoundTrip) {
  const std::string path = temp_path("uparc_io_test.bin");
  Bytes data(4096);
  Prng rng(1);
  for (auto& b : data) b = rng.byte();

  ASSERT_TRUE(write_file(path, data).ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
  std::remove(path.c_str());
}

TEST(Io, EmptyFile) {
  const std::string path = temp_path("uparc_io_empty.bin");
  ASSERT_TRUE(write_file(path, Bytes{}).ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
  std::remove(path.c_str());
}

TEST(Io, MissingFileErrors) {
  auto r = read_file("/nonexistent/definitely/not/here.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("cannot open"), std::string::npos);
}

TEST(Io, UnwritablePathErrors) {
  auto st = write_file("/nonexistent_dir_xyz/file.bin", Bytes{1, 2, 3});
  EXPECT_FALSE(st.ok());
}

TEST(Io, TextFileWrite) {
  const std::string path = temp_path("uparc_io_text.csv");
  ASSERT_TRUE(write_text_file(path, "a,b\n1,2\n").ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 8u);
  EXPECT_EQ(back.value()[0], 'a');
  std::remove(path.c_str());
}

TEST(Io, OverwriteTruncates) {
  const std::string path = temp_path("uparc_io_trunc.bin");
  ASSERT_TRUE(write_file(path, Bytes(100, 0xAA)).ok());
  ASSERT_TRUE(write_file(path, Bytes(10, 0xBB)).ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 10u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uparc
