// Tests for the determinism & shard-isolation analysis layer: golden
// diagnostics per iso.*/det.* rule id, the clean-topology property over the
// serving fleet, the replay verifier, and the kernel owner-thread guard.
#include <gtest/gtest.h>

#include <thread>

#include "analysis/isolation_lint.hpp"
#include "analysis/replay.hpp"
#include "analysis/source_lint.hpp"
#include "core/system.hpp"
#include "serve/frontend.hpp"
#include "serve/soak.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"
#include "sim/topology.hpp"
#include "txn/soak.hpp"

namespace uparc {
namespace {

using analysis::Diagnostic;
using analysis::Report;
using analysis::Severity;
using sim::kNoShard;
using sim::Topology;

struct Probe : sim::Module {
  Probe(sim::Simulation& sim, std::string name) : Module(sim, std::move(name)) {}
  using Module::bind_clock;
};

const Diagnostic* expect_rule(const Report& r, std::string_view rule) {
  const Diagnostic* d = r.find(rule);
  EXPECT_NE(d, nullptr) << "missing rule " << rule << "; got:\n" << r.render_text();
  return d;
}

// ---------------------------------------------------------------------------
// iso.*: golden diagnostic per rule over synthetic topologies.

TEST(IsolationLint, UnpartitionedTopologyIsImplicitlyClean) {
  sim::Simulation s;
  Probe a(s, "a");
  Probe b(s, "b");
  s.topology().declare_state_ref(&a, &b, "direct poke");  // would warn if audited
  EXPECT_FALSE(s.topology().partitioned());
  EXPECT_TRUE(analysis::lint_isolation(s).empty());
}

TEST(IsolationLint, GoldenModuleUnassigned) {
  sim::Simulation s;
  Probe a(s, "tagged");
  Probe b(s, "untagged");
  s.topology().assign_shard(&a, 0);
  Report r = analysis::lint_isolation(s);
  const Diagnostic* d = expect_rule(r, "iso.module.unassigned");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location.path, "untagged");
}

TEST(IsolationLint, GoldenClockMultiShard) {
  sim::Simulation s;
  sim::Clock clk(s, "clk", Frequency::mhz(100));
  Probe a(s, "a");
  Probe b(s, "b");
  a.bind_clock(clk);
  b.bind_clock(clk);
  s.topology().assign_shard_to_all(0);
  s.topology().assign_shard(&b, 1);
  Report r = analysis::lint_isolation(s);
  const Diagnostic* d = expect_rule(r, "iso.clock.multi-shard");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.path, "clk");
}

TEST(IsolationLint, GoldenStateCrossShard) {
  sim::Simulation s;
  Probe owner(s, "owner");
  Probe user(s, "user");
  s.topology().register_state(&owner, "owner.regfile");
  s.topology().declare_state_ref(&user, &owner, "register file");
  s.topology().assign_shard(&owner, 0);
  s.topology().assign_shard(&user, 1);
  Report r = analysis::lint_isolation(s);
  const Diagnostic* d = expect_rule(r, "iso.state.cross-shard");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("owner.regfile"), std::string::npos);
  // Same shard: clean.
  s.topology().assign_shard(&user, 0);
  EXPECT_FALSE(analysis::lint_isolation(s).has("iso.state.cross-shard"));
}

TEST(IsolationLint, GoldenStateUnregisteredRef) {
  sim::Simulation s;
  Probe a(s, "a");
  int mystery = 0;
  s.topology().declare_state_ref(&a, &mystery, "mystery latch");
  s.topology().assign_shard_to_all(0);
  Report r = analysis::lint_isolation(s);
  const Diagnostic* d = expect_rule(r, "iso.state.unregistered");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("mystery latch"), std::string::npos);
}

TEST(IsolationLint, GoldenStateUnregisteredChannelFifo) {
  sim::Simulation s;
  Probe a(s, "a");
  Probe b(s, "b");
  s.topology().declare_channel({&a, nullptr, &b, nullptr, "a.out", true});
  s.topology().assign_shard_to_all(0);
  Report r = analysis::lint_isolation(s);
  const Diagnostic* d = expect_rule(r, "iso.state.unregistered");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("a.out"), std::string::npos);
  // Registering the FIFO under its channel name clears the warning.
  int fifo_stand_in = 0;
  s.topology().register_state(&a, "a.out", &fifo_stand_in);
  EXPECT_FALSE(analysis::lint_isolation(s).has("iso.state.unregistered"));
}

TEST(IsolationLint, GoldenChannelDirectCrossShard) {
  sim::Simulation s;
  Probe a(s, "a");
  Probe b(s, "b");
  s.topology().declare_channel({&a, nullptr, &b, nullptr, "", false});
  s.topology().assign_shard(&a, 0);
  s.topology().assign_shard(&b, 1);
  Report r = analysis::lint_isolation(s);
  const Diagnostic* d = expect_rule(r, "iso.channel.direct-cross-shard");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.path, "a -> b");
}

TEST(IsolationLint, GoldenChannelUndeclared) {
  sim::Simulation s;
  Probe a(s, "a");
  Probe b(s, "b");
  Topology::Channel ch{&a, nullptr, &b, nullptr, "a.fifo", true};
  s.topology().declare_channel(ch);
  int fifo_stand_in = 0;
  s.topology().register_state(&a, "a.fifo", &fifo_stand_in);
  s.topology().assign_shard(&a, 0);
  s.topology().assign_shard(&b, 1);
  Report r = analysis::lint_isolation(s);
  const Diagnostic* d = expect_rule(r, "iso.channel.undeclared");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // The same FIFO declared cross_shard is the sanctioned pattern.
  sim::Simulation s2;
  Probe a2(s2, "a");
  Probe b2(s2, "b");
  Topology::Channel ok{&a2, nullptr, &b2, nullptr, "a.fifo", true, true};
  s2.topology().declare_channel(ok);
  s2.topology().register_state(&a2, "a.fifo", &fifo_stand_in);
  s2.topology().assign_shard(&a2, 0);
  s2.topology().assign_shard(&b2, 1);
  EXPECT_FALSE(analysis::lint_isolation(s2).has("iso.channel.undeclared"));
}

TEST(IsolationLint, GoldenShardHandoffUnbalanced) {
  sim::Simulation s;
  Probe a(s, "a");
  s.topology().assign_shard(&a, 0);
  s.release_ownership();  // released to nobody: no matching adopt
  Report r = analysis::lint_isolation(s);
  const Diagnostic* d = expect_rule(r, "iso.shard.handoff");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // Completing the latch-reset round trip clears the finding.
  s.adopt_ownership();
  EXPECT_FALSE(analysis::lint_isolation(s).has("iso.shard.handoff"));
}

// ---------------------------------------------------------------------------
// Property: the real stacks are partition-clean once tagged.

TEST(IsolationLint, ElaboratedSystemIsCleanAsOneShard) {
  core::SystemConfig cfg;
  cfg.with_cache = true;
  core::System sys(cfg);
  sys.sim().topology().assign_shard_to_all(0);
  EXPECT_TRUE(sys.sim().topology().partitioned());
  Report r = analysis::lint_isolation(sys.sim());
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(IsolationLint, ServingFleetIsCleanAcrossDeviceCounts) {
  for (unsigned devices : {1u, 2u, 3u}) {
    serve::FrontEndConfig cfg;
    cfg.devices = devices;
    cfg.modules = 2;
    cfg.module_kb = 4;
    serve::FrontEnd fe(cfg);
    Report r = fe.lint_isolation();
    EXPECT_TRUE(r.empty()) << devices << " devices:\n" << r.render_text();
  }
}

// ---------------------------------------------------------------------------
// det.*: golden diagnostic per source-lint rule.

TEST(SourceLint, GoldenGlobalMutable) {
  Report r = analysis::lint_source("t.cpp", "static int counter = 0;\n");
  const Diagnostic* d = expect_rule(r, "det.global.mutable");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.describe(), "t.cpp:1");
}

TEST(SourceLint, StaticConstAndFunctionsAreFine) {
  const char* ok =
      "static const int k = 1;\n"
      "static constexpr double kPi = 3.14;\n"
      "static int helper();\n"
      "int x = static_cast<int>(1.5);\n"
      "static_assert(sizeof(int) == 4);\n";
  Report r = analysis::lint_source("t.cpp", ok);
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(SourceLint, GoldenRandLibc) {
  Report r = analysis::lint_source("t.cpp", "int x = rand();\nsrand(7);\n");
  const Diagnostic* d = expect_rule(r, "det.rand.libc");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // Member calls named rand are someone else's business.
  EXPECT_TRUE(analysis::lint_source("t.cpp", "int x = gen.rand();\n").empty());
  EXPECT_TRUE(analysis::lint_source("t.cpp", "int x = prng->rand();\n").empty());
}

TEST(SourceLint, GoldenRandDevice) {
  Report r = analysis::lint_source("t.cpp", "std::random_device rd;\n");
  const Diagnostic* d = expect_rule(r, "det.rand.device");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(SourceLint, GoldenWallClock) {
  Report r = analysis::lint_source(
      "t.cpp", "auto t0 = std::chrono::system_clock::now();\ntime_t t = time(nullptr);\n");
  const Diagnostic* d = expect_rule(r, "det.time.wall-clock");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.describe(), "t.cpp:1");
  // Simulated time and members named time are fine.
  EXPECT_TRUE(analysis::lint_source("t.cpp", "auto t = sim.now();\n").empty());
  EXPECT_TRUE(analysis::lint_source("t.cpp", "auto t = event.time();\n").empty());
}

TEST(SourceLint, GoldenRngStd) {
  Report r = analysis::lint_source("t.cpp", "std::mt19937 gen(42);\n");
  const Diagnostic* d = expect_rule(r, "det.rng.std");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(SourceLint, GoldenContainerUnordered) {
  Report r = analysis::lint_source("t.cpp", "std::unordered_map<int, int> m;\n");
  const Diagnostic* d = expect_rule(r, "det.container.unordered");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(SourceLint, GoldenKeyPointer) {
  Report r = analysis::lint_source("t.cpp", "std::map<const Module*, int> shards;\n");
  const Diagnostic* d = expect_rule(r, "det.key.pointer");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_TRUE(analysis::lint_source("t.cpp", "std::map<std::string, int> m;\n").empty());
  // Pointer in the mapped type (not the key) is fine.
  EXPECT_TRUE(
      analysis::lint_source("t.cpp", "std::map<int, const Module*> m;\n").empty());
}

TEST(SourceLint, GoldenThreadRaw) {
  // Every raw threading primitive is a nondeterminism source (thread
  // scheduling orders work); only sim/parallel.* is allowlisted.
  for (const char* line :
       {"std::mutex mu;\n", "std::condition_variable cv;\n", "std::jthread t;\n",
        "std::binary_semaphore sem{0};\n", "std::thread worker(fn);\n"}) {
    Report r = analysis::lint_source("t.cpp", line);
    const Diagnostic* d = expect_rule(r, "det.thread.raw");
    ASSERT_NE(d, nullptr) << line;
    EXPECT_EQ(d->severity, Severity::kError) << line;
  }
  // std::thread::id and std::this_thread are bookkeeping, not scheduling —
  // the owner-thread guard itself must stay clean.
  EXPECT_TRUE(analysis::lint_source("t.cpp", "std::thread::id owner;\n").empty());
  EXPECT_TRUE(
      analysis::lint_source("t.cpp", "auto me = std::this_thread::get_id();\n").empty());
  // Unqualified member/field uses of the word "thread" are fine.
  EXPECT_TRUE(analysis::lint_source("t.cpp", "bool thread_guard_active();\n").empty());
  // The inline marker suppresses it like any other rule.
  EXPECT_TRUE(analysis::lint_source(
                  "t.cpp", "std::mutex mu;  // detlint:allow(det.thread.raw) barrier\n")
                  .empty());
}

TEST(SourceLint, InlineAllowSuppresses) {
  Report flagged = analysis::lint_source("t.cpp", "int x = rand();\n");
  EXPECT_FALSE(flagged.empty());
  Report allowed = analysis::lint_source(
      "t.cpp", "int x = rand();  // detlint:allow(det.rand.libc) seeding test\n");
  EXPECT_TRUE(allowed.empty()) << allowed.render_text();
  // The marker only covers the named rule.
  Report other = analysis::lint_source(
      "t.cpp", "std::random_device rd;  // detlint:allow(det.rand.libc)\n");
  EXPECT_TRUE(other.has("det.rand.device"));
}

TEST(SourceLint, CommentsAndStringsAreInvisible) {
  const char* text =
      "// calls rand() and time() all day\n"
      "/* std::random_device in prose */\n"
      "const char* s = \"rand() time(nullptr) std::mt19937\";\n";
  Report r = analysis::lint_source("t.cpp", text);
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(SourceLint, LineNumbersAnchorTheFinding) {
  Report r = analysis::lint_source("dir/f.cpp", "int a;\nint b;\nsrand(1);\n");
  const Diagnostic* d = expect_rule(r, "det.rand.libc");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->location.describe(), "dir/f.cpp:3");
}

// ---------------------------------------------------------------------------
// det.replay.divergence: artifact diffing and double-run byte-identity.

TEST(Replay, IdenticalArtifactsProduceNoDiagnostics) {
  Report r;
  analysis::diff_artifact("m.json", "{\"a\": 1}", "{\"a\": 1}", r);
  EXPECT_TRUE(r.empty());
}

TEST(Replay, GoldenDivergenceNamesNearestKey) {
  Report r;
  analysis::diff_artifact("m.json", "{\"a\": 1,\n \"b\": 2}", "{\"a\": 1,\n \"b\": 3}", r);
  const Diagnostic* d = expect_rule(r, "det.replay.divergence");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("\"b\""), std::string::npos) << d->message;
  EXPECT_EQ(d->location.describe(), "m.json:2");
}

TEST(Replay, LengthMismatchIsADivergence) {
  Report r;
  analysis::diff_artifact("m.json", "{\"a\": 1}", "{\"a\": 1}  ", r);
  EXPECT_TRUE(r.has("det.replay.divergence"));
}

TEST(Replay, TxnSoakDoubleRunIsByteIdentical) {
  txn::SoakConfig cfg;
  cfg.seed = 11;
  cfg.transactions = 60;
  analysis::ReplayResult res = analysis::verify_txn_replay(cfg);
  EXPECT_TRUE(res.identical()) << res.report.render_text();
  EXPECT_EQ(res.artifacts.size(), 4u);
}

TEST(Replay, ServeSoakDoubleRunIsByteIdentical) {
  serve::ServeSoakConfig cfg;
  cfg.seed = 5;
  cfg.requests = 150;
  cfg.modules = 2;
  analysis::ReplayResult res = analysis::verify_serve_replay(cfg);
  EXPECT_TRUE(res.identical()) << res.report.render_text();
}

TEST(Replay, ServeSoakReportFieldsMatchAcrossRuns) {
  serve::ServeSoakConfig cfg;
  cfg.seed = 9;
  cfg.requests = 120;
  cfg.modules = 2;
  const serve::ServeSoakReport a = serve::run_soak(cfg);
  const serve::ServeSoakReport b = serve::run_soak(cfg);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.health_json, b.health_json);
  EXPECT_EQ(a.summary(), b.summary());
}

// ---------------------------------------------------------------------------
// Kernel owner-thread guard.

TEST(ThreadGuard, SecondThreadAborts) {
  if (!sim::Simulation::thread_guard_active()) {
    GTEST_SKIP() << "owner-thread guard compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::Simulation s;
        s.schedule_in(TimePs{}, [] {});
        std::thread t([&] { (void)s.step(); });
        t.join();
      },
      "second thread");
}

TEST(ThreadGuard, SameThreadIsUnaffected) {
  sim::Simulation s;
  int fired = 0;
  s.schedule_in(TimePs{}, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace uparc
