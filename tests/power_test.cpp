// Unit tests for the power substrate: rail integration, calibrated model,
// component bindings, virtual scope.
#include <gtest/gtest.h>

#include "power/calibration.hpp"
#include "power/model.hpp"
#include "power/scope.hpp"

namespace uparc::power {
namespace {

TEST(Calibration, MatchesFig7OperatingPoints) {
  // Paper Fig. 7: total rail draw during reconfiguration.
  EXPECT_NEAR(fig7_total_mw(Frequency::mhz(50)), 183.0, 0.5);
  EXPECT_NEAR(fig7_total_mw(Frequency::mhz(100)), 259.0, 0.5);
  EXPECT_NEAR(fig7_total_mw(Frequency::mhz(200)), 394.0, 0.5);
  EXPECT_NEAR(fig7_total_mw(Frequency::mhz(300)), 453.0, 0.5);
}

TEST(Calibration, InterpolatesBetweenAnchors) {
  const double p150 = fig7_total_mw(Frequency::mhz(150));
  EXPECT_GT(p150, fig7_total_mw(Frequency::mhz(100)));
  EXPECT_LT(p150, fig7_total_mw(Frequency::mhz(200)));
}

TEST(Calibration, DatapathVanishesAtZeroFrequency) {
  EXPECT_NEAR(reconfig_datapath_mw(Frequency::mhz(0)), 0.0, 1e-9);
  EXPECT_NEAR(reconfig_datapath_mw(Frequency::mhz(25)), 38.0, 1.0);  // linear below 50
}

TEST(Calibration, ExtrapolatesWithDroopSlopeAbove300) {
  // 362.5 MHz continues the sub-linear 200->300 slope (0.59 mW/MHz).
  const double p362 = reconfig_datapath_mw(Frequency::mhz(362.5));
  EXPECT_NEAR(p362, 346.0 + 0.59 * 62.5, 2.0);
}

TEST(Calibration, EnergyAnchorsFromSectionV) {
  // UPaRC at 100 MHz: 259 mW for 550 us over 216.5 KB => ~0.66 uJ/KB.
  const double t_s = 550e-6;
  const double uj_per_kb = fig7_total_mw(Frequency::mhz(100)) * t_s * 1e3 / 216.5;
  EXPECT_NEAR(uj_per_kb, 0.66, 0.02);
  // xps_hwicap: 44 mW at 1.5 MB/s => ~30 uJ/KB.
  const double xps_uj_per_kb = kXpsHwicapCopyMw * (1024.0 / 1.5e6) * 1e3;
  EXPECT_NEAR(xps_uj_per_kb, 30.0, 1.0);
  // Ratio ~45x.
  EXPECT_NEAR(xps_uj_per_kb / uj_per_kb, 45.0, 3.0);
}

TEST(RailTest, StepFunctionAndEnergy) {
  sim::Simulation sim;
  Rail rail(sim, "vccint");
  EXPECT_EQ(rail.current_mw(), 0.0);

  rail.set_contribution("a", 100.0);
  sim.schedule_at(TimePs::from_us(10), [&] { rail.set_contribution("b", 50.0); });
  sim.schedule_at(TimePs::from_us(20), [&] { rail.set_contribution("a", 0.0); });
  sim.schedule_at(TimePs::from_us(30), [&] { rail.set_contribution("b", 0.0); });
  sim.run();

  // Energy: 100 mW * 10 us + 150 * 10 + 50 * 10 = 1 + 1.5 + 0.5 uJ = 3 uJ.
  EXPECT_NEAR(rail.energy_uj(TimePs(0), TimePs::from_us(30)), 3.0, 1e-9);
  EXPECT_NEAR(rail.energy_uj(TimePs::from_us(10), TimePs::from_us(20)), 1.5, 1e-9);
  EXPECT_NEAR(rail.peak_mw(TimePs(0), TimePs::from_us(30)), 150.0, 1e-9);
  EXPECT_EQ(rail.current_mw(), 0.0);
}

TEST(RailTest, ZeroWindowAndContributionQueries) {
  sim::Simulation sim;
  Rail rail(sim, "r");
  rail.set_contribution("x", 10.0);
  EXPECT_EQ(rail.energy_uj(TimePs(5), TimePs(5)), 0.0);
  EXPECT_EQ(rail.contribution("x"), 10.0);
  EXPECT_EQ(rail.contribution("unknown"), 0.0);
}

TEST(BlockPowerTest, TracksClockFrequencyAndGating) {
  sim::Simulation sim;
  Rail rail(sim, "r");
  sim::Clock clk(sim, "clk", Frequency::mhz(100));
  BlockPower block(rail, "urec", clk, [](Frequency f) { return 1.5 * f.in_mhz(); });

  EXPECT_EQ(rail.current_mw(), 0.0);
  block.set_active(true);
  EXPECT_NEAR(rail.current_mw(), 150.0, 1e-9);

  clk.set_frequency(Frequency::mhz(300));
  block.refresh();
  EXPECT_NEAR(rail.current_mw(), 450.0, 1e-9);

  block.set_active(false);
  EXPECT_EQ(rail.current_mw(), 0.0);
}

TEST(BlockPowerTest, DestructorReleasesContribution) {
  sim::Simulation sim;
  Rail rail(sim, "r");
  sim::Clock clk(sim, "clk", Frequency::mhz(100));
  {
    BlockPower block(rail, "tmp", clk, [](Frequency) { return 42.0; });
    block.set_active(true);
    EXPECT_NEAR(rail.current_mw(), 42.0, 1e-9);
  }
  EXPECT_EQ(rail.current_mw(), 0.0);
}

TEST(ConstantPowerTest, LevelsAndRelevel) {
  sim::Simulation sim;
  Rail rail(sim, "r");
  ConstantPower p(rail, "mgr", kManagerActiveWaitMw);
  p.set_active(true);
  EXPECT_NEAR(rail.current_mw(), 107.0, 1e-9);
  p.set_level(128.0);
  EXPECT_NEAR(rail.current_mw(), 128.0, 1e-9);
  p.set_active(false);
  EXPECT_EQ(rail.current_mw(), 0.0);
}

TEST(ScopeTest, SamplesStepFunction) {
  sim::Simulation sim;
  Rail rail(sim, "r");
  rail.set_contribution("x", 100.0);
  sim.schedule_at(TimePs::from_us(50), [&] { rail.set_contribution("x", 0.0); });
  sim.run();

  VirtualScope scope(rail);
  auto samples = scope.capture(TimePs(0), TimePs::from_us(100), TimePs::from_us(10));
  ASSERT_EQ(samples.size(), 11u);
  EXPECT_NEAR(samples[0].mw, 100.0, 1e-9);
  EXPECT_NEAR(samples[4].mw, 100.0, 1e-9);
  EXPECT_NEAR(samples[6].mw, 0.0, 1e-9);

  const std::string csv = VirtualScope::to_csv(samples);
  EXPECT_NE(csv.find("time_us,power_mw"), std::string::npos);
  EXPECT_NE(csv.find("100.000"), std::string::npos);

  const std::string ascii = VirtualScope::to_ascii(samples, 20, 5);
  EXPECT_NE(ascii.find('#'), std::string::npos);
}

}  // namespace
}  // namespace uparc::power
