// Tests for the sharded parallel executor: barrier-epoch protocol, message
// merge order, ownership handoff round-trips, wedge handling, and the
// worker-count invariance of the serve fleet artifacts.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "serve/soak.hpp"
#include "sim/kernel.hpp"
#include "sim/parallel.hpp"

namespace uparc::sim {
namespace {

TEST(ParallelExecutor, MessagesMergeInTimeShardSeqOrder) {
  // The delivered stream is a pure function of shard content: (t, shard,
  // seq) order, identical for any worker count.
  for (unsigned workers : {1u, 3u}) {
    Simulation a;
    Simulation b;
    ParallelExecutor ex(workers);
    const ShardId sa = ex.add_shard(&a, "a");
    const ShardId sb = ex.add_shard(&b, "b");
    std::vector<std::string> log;
    ex.set_sink([&](TimePs, std::function<void()> fn) { fn(); });
    ex.start();
    ex.post(sa, [&ex, sa, &log] {
      ex.send(sa, TimePs(30), [&log] { log.push_back("a@30"); });
      ex.send(sa, TimePs(30), [&log] { log.push_back("a@30#2"); });
    });
    ex.post(sb, [&ex, sb, &log] {
      ex.send(sb, TimePs(10), [&log] { log.push_back("b@10"); });
      ex.send(sb, TimePs(30), [&log] { log.push_back("b@30"); });
    });
    ex.run_epoch({TimePs(100), TimePs(100)});
    ex.stop();
    EXPECT_EQ(log, (std::vector<std::string>{"b@10", "a@30", "a@30#2", "b@30"}))
        << workers << " workers";
    EXPECT_EQ(ex.stats().epochs, 1u);
    EXPECT_EQ(ex.stats().messages, 4u);
  }
}

TEST(ParallelExecutor, ShardsAdvanceToEpochTargets) {
  Simulation a;
  Simulation b;
  int fired = 0;
  ParallelExecutor ex(2);
  const ShardId sa = ex.add_shard(&a, "a");
  ex.add_shard(&b, "b");
  ex.start();
  ex.post(sa, [&a, &fired] { a.schedule_at(TimePs(50), [&fired] { ++fired; }); });
  ex.run_epoch({TimePs(40), TimePs(40)});
  EXPECT_EQ(fired, 0);  // event at 50 is beyond the first horizon
  ex.run_epoch({TimePs(60), TimePs(60)});
  ex.stop();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(a.now(), TimePs(60));
  EXPECT_EQ(b.now(), TimePs(60));
}

TEST(ParallelExecutor, HandoffRoundTripsBalanceAndAudit) {
  Simulation s;
  ParallelExecutor ex(2);
  const ShardId id = ex.add_shard(&s, "s");
  ex.start();
  ex.run_epoch({TimePs(10)});
  ex.acquire(id);
  // The coordinator owns the kernel during the drill window and may drive
  // it directly (the serve restart drill rebuilds a device here).
  int fired = 0;
  s.schedule_at(TimePs(15), [&fired] { ++fired; });
  s.run_until(TimePs(20));
  EXPECT_EQ(fired, 1);
  ex.release(id, &s);
  ex.run_epoch({TimePs(30)});
  ex.stop();
  // Every release paired with an adopt: start, acquire, release, stop.
  EXPECT_EQ(s.topology().handoff_releases(), s.topology().handoff_adopts());
  EXPECT_EQ(s.topology().handoff_releases(), 4u);
}

TEST(ParallelExecutor, WedgedShardReportsOnceAndParks) {
  Simulation s;
  ParallelExecutor ex(1);
  const ShardId id = ex.add_shard(&s, "s");
  std::vector<std::string> errors;
  ex.set_error_handler([&](ShardId shard, const std::string& what) {
    errors.push_back(std::to_string(shard) + ": " + what);
  });
  ex.start();
  ex.post(id, [] { throw std::runtime_error("boom"); });
  ex.run_epoch({TimePs(10)});
  EXPECT_EQ(errors.size(), 1u);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("boom"), std::string::npos) << errors[0];
  // Parked: later epochs drop this shard's jobs, never advance it, and
  // never re-report the wedge.
  int ran = 0;
  ex.post(id, [&ran] { ++ran; });
  ex.run_epoch({TimePs(20)});
  ex.stop();
  EXPECT_EQ(errors.size(), 1u);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(s.now(), TimePs(0));  // the throwing epoch never advanced it
}

// ---------------------------------------------------------------------------
// Worker-count invariance over the real serve fleet: the acceptance
// contract for the parallel path. All seven artifacts must match 1 worker
// byte for byte — including the faulted + restart-drill scenario.

TEST(ParallelServe, WorkerCountInvariantArtifacts) {
  serve::ServeSoakConfig cfg;
  cfg.seed = 3;
  cfg.requests = 80;
  cfg.devices = 3;
  cfg.fault_scale = 1.0;
  cfg.telemetry_interval = TimePs::from_us(250);
  cfg.restart_after_loads = 10;
  cfg.workers = 1;
  const serve::ServeSoakReport one = serve::run_soak(cfg);
  EXPECT_TRUE(one.ok()) << one.summary();
  for (unsigned workers : {2u, 4u}) {
    cfg.workers = workers;
    const serve::ServeSoakReport n = serve::run_soak(cfg);
    EXPECT_TRUE(n.ok()) << n.summary();
    EXPECT_EQ(one.metrics_json, n.metrics_json) << workers << " workers";
    EXPECT_EQ(one.health_json, n.health_json) << workers << " workers";
    EXPECT_EQ(one.telemetry_json, n.telemetry_json) << workers << " workers";
    EXPECT_EQ(one.telemetry_csv, n.telemetry_csv) << workers << " workers";
    EXPECT_EQ(one.alerts_json, n.alerts_json) << workers << " workers";
    EXPECT_EQ(one.flight_json, n.flight_json) << workers << " workers";
    EXPECT_EQ(one.summary(), n.summary()) << workers << " workers";
  }
}

TEST(ParallelServe, FaultedWideFleetSoakHoldsInvariants) {
  serve::ServeSoakConfig cfg;
  cfg.seed = 1;
  cfg.requests = 150;
  cfg.devices = 8;
  cfg.fault_scale = 1.0;
  cfg.workers = 4;
  const serve::ServeSoakReport report = serve::run_soak(cfg);
  EXPECT_TRUE(report.ok()) << report.summary();
  u64 completed = 0;
  for (u64 c : report.completed) completed += c;
  EXPECT_GT(completed, 0u);
}

}  // namespace
}  // namespace uparc::sim
