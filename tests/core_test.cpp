// Unit tests for the core: UReC, the decompressor unit, the timing model,
// resources, and the UPaRC top level.
#include <gtest/gtest.h>

#include "core/resources.hpp"
#include "core/system.hpp"

namespace uparc::core {
namespace {

using namespace uparc::literals;

bits::PartialBitstream make_bs(std::size_t bytes, u64 seed = 1) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  return bits::Generator(cfg).generate();
}

// ---------------------------------------------------------------- UReC FSM

class UrecFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  icap::ConfigPlane plane{sim, "plane", bits::kVirtex5Sx50t};
  icap::Icap port{sim, "icap", plane};
  sim::Clock clk2{sim, "clk2", Frequency::mhz(100)};
  mem::Bram bram{sim, "bram", 256_KiB};
  UReC urec{sim, "urec", clk2, bram, port, nullptr};
};

TEST_F(UrecFixture, StreamsOneWordPerCycle) {
  auto bs = make_bs(16_KiB);
  bram.write_word(0, manager::BramLayout::make_header(false, static_cast<u32>(bs.body.size())));
  bram.load_words(bs.body, 1);

  bool finished = false;
  TimePs finish_time{};
  urec.start([&] {
    finished = true;
    finish_time = sim.now();
  });
  sim.run();

  ASSERT_TRUE(finished);
  EXPECT_EQ(urec.state(), UrecState::kFinished);
  EXPECT_TRUE(port.done());
  EXPECT_TRUE(plane.contains(bs.frames));
  // Header read + N stream cycles at 10 ns each.
  EXPECT_EQ(finish_time.ps(), (1 + bs.body.size()) * 10'000);
  // EN gating: clock off after Finish.
  EXPECT_FALSE(clk2.enabled());
  EXPECT_EQ(urec.words_to_icap(), bs.body.size());
}

TEST_F(UrecFixture, ErrorsOnEmptyPayload) {
  bram.write_word(0, manager::BramLayout::make_header(false, 0));
  bool finished = false;
  urec.start([&] { finished = true; });
  sim.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(urec.state(), UrecState::kError);
  EXPECT_NE(urec.error_message().find("empty payload"), std::string::npos);
}

TEST_F(UrecFixture, ErrorsOnOversizedLengthField) {
  bram.write_word(0, manager::BramLayout::make_header(false, 0x00FFFFFF));
  bool finished = false;
  urec.start([&] { finished = true; });
  sim.run();
  EXPECT_EQ(urec.state(), UrecState::kError);
}

TEST_F(UrecFixture, ErrorsOnCompressedWithoutDecompressor) {
  bram.write_word(0, manager::BramLayout::make_header(true, 100));
  bool finished = false;
  urec.start([&] { finished = true; });
  sim.run();
  EXPECT_EQ(urec.state(), UrecState::kError);
  EXPECT_NE(urec.error_message().find("no decompressor"), std::string::npos);
}

TEST_F(UrecFixture, StartWhileBusyThrows) {
  auto bs = make_bs(8_KiB);
  bram.write_word(0, manager::BramLayout::make_header(false, static_cast<u32>(bs.body.size())));
  bram.load_words(bs.body, 1);
  urec.start([] {});
  EXPECT_THROW(urec.start([] {}), std::logic_error);
  sim.run();
}

TEST_F(UrecFixture, PropagatesIcapErrors) {
  // Malformed body: bare type-2 after sync.
  Words body = {bits::kSyncWord, bits::type2(bits::Opcode::kWrite, 4), 1, 2, 3, 4};
  bram.write_word(0, manager::BramLayout::make_header(false, static_cast<u32>(body.size())));
  bram.load_words(body, 1);
  bool finished = false;
  urec.start([&] { finished = true; });
  sim.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(urec.state(), UrecState::kError);
  EXPECT_NE(urec.error_message().find("ICAP"), std::string::npos);
}

// --------------------------------------------------------- DecompressorUnit

TEST(DecompressorUnitTest, SustainsRatedThroughput) {
  sim::Simulation sim;
  sim::Clock clk3(sim, "clk3", Frequency::mhz(126));
  compress::HardwareProfile hw;  // X-MatchPRO: 2 words/cycle
  DecompressorUnit unit(sim, "decomp", clk3, hw, 16, 0);

  Words output(10'000, 0xCAFEBABEu);
  unit.arm(output, 2'500);  // 4:1 compression
  // Saturate the input and drain the output as fast as it appears.
  std::size_t fed = 0;
  std::size_t drained = 0;
  clk3.on_rising([&] {
    while (fed < 2'500 && unit.can_accept_input()) {
      unit.push_input(0x11111111u);
      ++fed;
    }
    while (unit.has_output()) {
      EXPECT_EQ(unit.pop_output(), 0xCAFEBABEu);
      ++drained;
    }
    if (unit.stream_done()) clk3.disable();
  });
  const TimePs t0 = sim.now();
  clk3.enable();
  sim.run();

  EXPECT_EQ(drained, 10'000u);
  // 2 words/cycle at 126 MHz => ~5000 cycles => ~39.7 us.
  const double us = (sim.now() - t0).us();
  EXPECT_NEAR(us, 5000.0 / 126.0, 2.0);
}

TEST(DecompressorUnitTest, StallsWhenInputStarved) {
  sim::Simulation sim;
  sim::Clock clk3(sim, "clk3", Frequency::mhz(100));
  DecompressorUnit unit(sim, "decomp", clk3, compress::HardwareProfile{}, 16, 0);
  Words output(100, 7u);
  unit.arm(output, 100);  // 1:1 "compression" — input-bound

  std::size_t drained = 0;
  int cycle = 0;
  clk3.on_rising([&] {
    // Feed one input word every 4 cycles only.
    if (cycle % 4 == 0 && unit.can_accept_input() && cycle / 4 < 100) {
      unit.push_input(1);
    }
    ++cycle;
    while (unit.has_output()) {
      (void)unit.pop_output();
      ++drained;
    }
    if (unit.stream_done() || cycle > 2000) clk3.disable();
  });
  clk3.enable();
  sim.run();
  EXPECT_EQ(drained, 100u);
  EXPECT_GT(unit.stall_cycles(), 100u);  // starved most cycles
}

TEST(DecompressorUnitTest, RespectsOutputBackpressure) {
  sim::Simulation sim;
  sim::Clock clk3(sim, "clk3", Frequency::mhz(100));
  DecompressorUnit unit(sim, "decomp", clk3, compress::HardwareProfile{}, 4, 0);
  Words output(100, 9u);
  unit.arm(output, 25);

  // Keep input saturated but never drain the output: production must halt
  // at the FIFO depth and the stall counter must grow.
  int cycles = 0;
  clk3.on_rising([&] {
    while (unit.can_accept_input()) unit.push_input(0);
    if (++cycles == 50) clk3.disable();
  });
  clk3.enable();
  sim.run();
  EXPECT_EQ(unit.produced(), 4u);  // output FIFO depth
  EXPECT_FALSE(unit.stream_done());
  EXPECT_GT(unit.stall_cycles(), 30u);
}

TEST(DecompressorUnitTest, InputFifoOverflowIsAModelBug) {
  sim::Simulation sim;
  sim::Clock clk3(sim, "clk3", Frequency::mhz(100));
  DecompressorUnit unit(sim, "decomp", clk3, compress::HardwareProfile{}, 4, 0);
  unit.arm(Words(10, 1u), 10);
  for (int i = 0; i < 4; ++i) unit.push_input(0);
  EXPECT_FALSE(unit.can_accept_input());
  EXPECT_THROW(unit.push_input(0), std::logic_error);
}

TEST(DecompressorUnitTest, ArmRejectsEmptyStream) {
  sim::Simulation sim;
  sim::Clock clk3(sim, "clk3", Frequency::mhz(100));
  DecompressorUnit unit(sim, "decomp", clk3, compress::HardwareProfile{});
  EXPECT_THROW(unit.arm(Words{}, 10), std::invalid_argument);
}

// -------------------------------------------------------------- TimingModel

TEST(TimingModelTest, PaperFrequenciesByFamily) {
  TimingModel v5(bits::kVirtex5Sx50t);
  TimingModel v6(bits::kVirtex6Lx240t);
  // 362.5 MHz reliable on V5 at default conditions, not on V6.
  EXPECT_TRUE(v5.is_reliable(Frequency::mhz(362.5)));
  EXPECT_FALSE(v6.is_reliable(Frequency::mhz(362.5)));
  // "a few MHz lower" on V6.
  const double delta = v5.max_reliable().in_mhz() - v6.max_reliable().in_mhz();
  EXPECT_GT(delta, 2.0);
  EXPECT_LT(delta, 15.0);
}

TEST(TimingModelTest, DeratesWithTemperatureAndVoltage) {
  TimingModel v5(bits::kVirtex5Sx50t);
  OperatingConditions hot{1.0, 85.0};
  OperatingConditions low_v{0.95, 20.0};
  EXPECT_LT(v5.max_reliable(hot), v5.max_reliable());
  EXPECT_LT(v5.max_reliable(low_v), v5.max_reliable());
  EXPECT_FALSE(v5.is_reliable(Frequency::mhz(362.5), hot));
}

TEST(TimingModelTest, SampleSpreadIsDeterministicAndBounded) {
  TimingModel a(bits::kVirtex5Sx50t, 42);
  TimingModel b(bits::kVirtex5Sx50t, 42);
  TimingModel c(bits::kVirtex5Sx50t, 43);
  EXPECT_EQ(a.max_reliable().in_hz(), b.max_reliable().in_hz());
  EXPECT_NE(a.max_reliable().in_hz(), c.max_reliable().in_hz());
  EXPECT_NEAR(a.max_reliable().in_mhz(), a.family_ceiling().in_mhz(), 3.5);
}

// ---------------------------------------------------------------- Resources

TEST(ResourcesTest, Table2Values) {
  EXPECT_EQ(resources(Block::kDyCloGen).slices_v5, 24u);
  EXPECT_EQ(resources(Block::kDyCloGen).slices_v6, 18u);
  EXPECT_EQ(resources(Block::kUReC).slices_v5, 26u);
  EXPECT_EQ(resources(Block::kUReC).slices_v6, 26u);
  EXPECT_EQ(resources(Block::kDecompressorXMatchPro).slices_v5, 1035u);
  EXPECT_EQ(resources(Block::kDecompressorXMatchPro).slices_v6, 900u);
  EXPECT_TRUE(resources(Block::kUReC).from_paper);
  EXPECT_FALSE(resources(Block::kMicroBlazeManager).from_paper);
  EXPECT_EQ(uparc_controller_slices_v5(), 50u);
  EXPECT_EQ(all_resources().size(), 9u);
}

// ------------------------------------------------------------------- UPaRC

class UparcFixture : public ::testing::Test {
 protected:
  System sys;
};

TEST_F(UparcFixture, UncompressedReconfigurationDeliversFrames) {
  auto bs = make_bs(64_KiB);
  ASSERT_TRUE(sys.stage(bs).ok());
  EXPECT_FALSE(sys.uparc().staged_compressed());
  EXPECT_EQ(sys.uparc().kind(), "UPaRC_i");
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(bs.frames));
  EXPECT_EQ(r.payload_bytes, bs.body.size() * 4);
}

TEST_F(UparcFixture, PaperHeadlineBandwidthAt362_5) {
  auto bs = make_bs(247_KiB);
  auto md = sys.set_frequency_blocking(Frequency::mhz(362.5));
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(md->m, 29u);
  EXPECT_EQ(md->d, 8u);
  ASSERT_TRUE(sys.stage(bs).ok());
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  // Table III: 1433 MB/s (99% of the 1450 MB/s theoretical).
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 1433.0, 15.0);
}

TEST_F(UparcFixture, CompressedModeForOversizedBitstreams) {
  auto bs = make_bs(600_KiB, 3);
  ASSERT_TRUE(sys.stage(bs).ok());
  EXPECT_TRUE(sys.uparc().staged_compressed());
  EXPECT_EQ(sys.uparc().kind(), "UPaRC_ii");
  EXPECT_LT(sys.uparc().staged_stored_bytes(), 256_KiB);
  (void)sys.set_frequency_blocking(Frequency::mhz(255));
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(bs.frames));
  // Paper: ~1008 MB/s decompressor-limited (we synthesize 125 MHz for CLK_3).
  EXPECT_NEAR(r.bandwidth().mb_per_sec(), 1000.0, 30.0);
}

TEST_F(UparcFixture, CompressedModeCapsReconfigClock) {
  auto bs = make_bs(600_KiB, 3);
  ASSERT_TRUE(sys.stage(bs).ok());
  EXPECT_NEAR(sys.uparc().max_frequency().in_mhz(), 255.0, 1e-9);
  auto md = sys.set_frequency_blocking(Frequency::mhz(362.5));
  ASSERT_TRUE(md.has_value());
  EXPECT_LE(md->f_out.in_mhz(), 255.0 + 1e-9);
}

TEST_F(UparcFixture, HandlesMaxCompressibleBitstream) {
  // Paper: 256 KB BRAM holds up to ~992 KB compressed (~40% of the device).
  auto bs = make_bs(992_KiB, 11);
  auto st = sys.stage(bs);
  ASSERT_TRUE(st.ok()) << st.error().message;
  auto r = sys.reconfigure_blocking();
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(bs.frames));
}

TEST_F(UparcFixture, StageFailureWhenIncompressiblyLarge) {
  // Near-random content barely compresses; 2 MB cannot fit 256 KB.
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 2_MiB;
  cfg.complexity = 1.0;
  cfg.tuning = bits::ContentTuning{};  // defaults are much less compressible
  cfg.tuning->noise_word_p = 1.0;
  cfg.tuning->zero_seg_p = 0.0;
  cfg.tuning->fill_seg_p = 0.0;
  cfg.tuning->repeat_seg_p = 0.0;
  cfg.tuning->new_template_p = 1.0;
  cfg.tuning->mutate_p = 0.9;
  auto bs = bits::Generator(cfg).generate();
  auto st = sys.stage(bs);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("even compressed"), std::string::npos);
}

TEST_F(UparcFixture, ReconfigureWithoutStageFails) {
  auto r = sys.reconfigure_blocking();
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("without stage"), std::string::npos);
}

TEST_F(UparcFixture, ReconfigureDefersUntilPreloadCompletes) {
  auto bs = make_bs(64_KiB);
  ASSERT_TRUE(sys.stage(bs).ok());
  // Immediately reconfigure — the preload copy is still in flight; the
  // launch must wait for it rather than stream a half-filled BRAM.
  auto r = sys.reconfigure_blocking();
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(bs.frames));
}

TEST_F(UparcFixture, AdaptMinPowerMeetsDeadline) {
  auto bs = make_bs(216_KiB);
  ASSERT_TRUE(sys.stage(bs).ok());
  auto plan = sys.adapt_blocking(manager::FrequencyPolicy::kMinPowerDeadline,
                                 TimePs::from_us(600));
  ASSERT_TRUE(plan.has_value());
  EXPECT_LE(plan->predicted_time, TimePs::from_us(600));
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_LE(r.duration(), TimePs::from_us(600));
  // And the chosen clock is far below max: power-aware, not max-speed.
  EXPECT_LT(plan->choice.f_out.in_mhz(), 200.0);
}

TEST_F(UparcFixture, EnergyAccountingMatchesRail) {
  auto bs = make_bs(216_KiB);
  (void)sys.set_frequency_blocking(Frequency::mhz(100));
  ASSERT_TRUE(sys.stage(bs).ok());
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_GT(r.energy_uj, 0.0);
  EXPECT_NEAR(r.energy_uj, sys.rail()->energy_uj(r.start, r.end), 1e-9);
}

TEST_F(UparcFixture, SwapDecompressorInstallsNewCodec) {
  EXPECT_EQ(sys.uparc().codec(), compress::CodecId::kXMatchPro);
  auto r = sys.swap_decompressor_blocking(compress::CodecId::kRle);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(sys.uparc().codec(), compress::CodecId::kRle);
  // CLK_3 retuned to the RLE decoder's 200 MHz F_max (<= as synthesized).
  const double clk3 =
      sys.uparc().dyclogen().frequency(clocking::ClockId::kDecompress).in_mhz();
  EXPECT_LE(clk3, 200.0 + 1e-9);
  EXPECT_GT(clk3, 190.0);
  // And the swapped-in decompressor still works end to end.
  auto bs = make_bs(600_KiB, 3);
  ASSERT_TRUE(sys.stage(bs).ok());
  auto r2 = sys.reconfigure_blocking();
  EXPECT_TRUE(r2.success) << r2.error;
  EXPECT_TRUE(sys.plane().contains(bs.frames));
}

TEST_F(UparcFixture, Fig7PowerLevelsOnTheRail) {
  auto bs = make_bs(216_KiB);
  for (double mhz : {50.0, 100.0, 200.0, 300.0}) {
    (void)sys.set_frequency_blocking(Frequency::mhz(mhz));
    ASSERT_TRUE(sys.stage(bs).ok());
    auto r = sys.reconfigure_blocking();
    ASSERT_TRUE(r.success) << r.error;
    // Peak draw during the reconfiguration matches Fig. 7's plateau.
    const double plateau = sys.rail()->peak_mw(r.start, r.end);
    EXPECT_NEAR(plateau, power::fig7_total_mw(Frequency::mhz(mhz)), 1.0) << mhz;
  }
}

TEST(UparcConfigTest, Virtex6LimitsFrequency) {
  SystemConfig cfg;
  cfg.uparc.device = bits::kVirtex6Lx240t;
  System sys(cfg);
  auto md = sys.set_frequency_blocking(Frequency::mhz(362.5));
  ASSERT_TRUE(md.has_value());
  EXPECT_LT(md->f_out.in_mhz(), 362.5);  // V6: "a few MHz lower"
}

TEST(UparcConfigTest, RejectsUnknownCodec) {
  sim::Simulation sim;
  icap::ConfigPlane plane(sim, "p", bits::kVirtex5Sx50t);
  icap::Icap port(sim, "i", plane);
  UparcConfig cfg;
  cfg.codec = static_cast<compress::CodecId>(99);
  EXPECT_THROW(Uparc(sim, "u", port, cfg, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace uparc::core
