// Unit tests for the durable write-ahead log: record framing, tail
// classification after the crash-injector corruption modes, compacting
// checkpoints (including the torn-checkpoint durability order), the file
// backend, and the wal.* lint rule catalog.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "analysis/wal_lint.hpp"
#include "fault/crash.hpp"
#include "sim/kernel.hpp"
#include "txn/wal.hpp"

namespace uparc::txn {
namespace {

Bytes concat(std::initializer_list<Bytes> parts) {
  Bytes out;
  for (const Bytes& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

TEST(WalFramingTest, EncodeDecodeRoundTrip) {
  const Bytes rec = Wal::encode_record(7, TimePs{1234}, WalRecordType::kTxnBegin,
                                       "{\"txn\":7}");
  const WalScan scan = scan_wal(rec);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 7u);
  EXPECT_EQ(scan.records[0].t, TimePs{1234});
  EXPECT_EQ(scan.records[0].type, WalRecordType::kTxnBegin);
  EXPECT_EQ(scan.records[0].payload, "{\"txn\":7}");
  EXPECT_EQ(scan.records[0].bytes, rec.size());
  EXPECT_EQ(scan.tail, WalTailState::kClean);
  EXPECT_EQ(scan.discarded_bytes, 0u);
}

TEST(WalTest, AppendsAreScannableWithGaplessSeqs) {
  sim::Simulation sim;
  MemWalStorage store;
  Wal wal(sim, "wal", store);
  for (int i = 0; i < 5; ++i) {
    wal.append(WalRecordType::kHealth, "{\"health\":{}}");
  }
  EXPECT_EQ(wal.records_appended(), 5u);
  const WalScan scan = scan_wal(store.read_all());
  ASSERT_EQ(scan.records.size(), 5u);
  for (u64 i = 0; i < 5; ++i) EXPECT_EQ(scan.records[i].seq, i + 1);
  EXPECT_EQ(scan.tail, WalTailState::kClean);
  EXPECT_TRUE(analysis::lint_wal(scan).clean());
}

TEST(WalTest, TornWriteLosesOnlyTheTailRecord) {
  sim::Simulation sim;
  MemWalStorage store;
  Wal wal(sim, "wal", store);
  wal.append(WalRecordType::kTxnBegin, "{\"txn\":1,\"region\":\"r0\"}");
  wal.append(WalRecordType::kTxnPhase, "{\"txn\":1,\"phase\":\"forward\"}");
  wal.corrupt_tail(WalCorruption::kTornWrite);
  const WalScan scan = scan_wal(store.read_all());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.last_seq(), 1u);
  EXPECT_EQ(scan.tail, WalTailState::kTorn);
  EXPECT_GT(scan.discarded_bytes, 0u);
  // Expected crash artifact: a warning, never an error.
  const analysis::Report lint = analysis::lint_wal(scan);
  EXPECT_TRUE(lint.has("wal.tail.torn"));
  EXPECT_EQ(lint.error_count(), 0u);
}

TEST(WalTest, PartialHeaderIsTornAndBitFlipIsCorrupt) {
  for (const WalCorruption mode : {WalCorruption::kPartialRecord, WalCorruption::kBitFlip}) {
    sim::Simulation sim;
    MemWalStorage store;
    Wal wal(sim, "wal", store);
    wal.append(WalRecordType::kHealth, "{\"health\":{}}");
    wal.append(WalRecordType::kCachePin, "{\"region\":\"r0\"}");
    wal.corrupt_tail(mode);
    const WalScan scan = scan_wal(store.read_all());
    EXPECT_EQ(scan.last_seq(), 1u) << to_string(mode);
    EXPECT_EQ(scan.tail, mode == WalCorruption::kPartialRecord ? WalTailState::kTorn
                                                               : WalTailState::kCorrupt)
        << to_string(mode);
  }
}

TEST(WalTest, MidLogDamageIsDetectedAsResync) {
  const Bytes r1 = Wal::encode_record(1, TimePs{10}, WalRecordType::kHealth, "{}");
  Bytes r2 = Wal::encode_record(2, TimePs{20}, WalRecordType::kHealth, "{}");
  const Bytes r3 = Wal::encode_record(3, TimePs{30}, WalRecordType::kHealth, "{}");
  r2[r2.size() / 2] ^= 0x10;  // damage mid-log, survivors beyond it
  const WalScan scan = scan_wal(concat({r1, r2, r3}));
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.resync_after_tail);
  const analysis::Report lint = analysis::lint_wal(scan);
  EXPECT_TRUE(lint.has("wal.corrupt.mid"));
  EXPECT_GT(lint.error_count(), 0u);
}

TEST(WalTest, CheckpointRotationCompactsAndKeepsSeqChain) {
  sim::Simulation sim;
  MemWalStorage store;
  Wal wal(sim, "wal", store, WalPolicy{.segment_records = 3});
  wal.set_checkpoint_source([] { return std::string("{\"snap\":true}"); });
  for (int i = 0; i < 4; ++i) wal.append(WalRecordType::kHealth, "{}");
  const std::size_t before = store.size();
  wal.maybe_checkpoint();
  EXPECT_EQ(wal.checkpoints(), 1u);
  EXPECT_LT(store.size(), before + 100);  // compacted: old records dropped
  const WalScan scan = scan_wal(store.read_all());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(scan.records[0].seq, 5u);  // seq survives compaction
  EXPECT_EQ(scan.records[0].payload, "{\"snap\":true}");
  wal.append(WalRecordType::kHealth, "{}");
  EXPECT_EQ(scan_wal(store.read_all()).last_seq(), 6u);
}

TEST(WalTest, CrashDuringCheckpointPreservesThePriorEpoch) {
  // Durability-order regression: the checkpoint record must be appended
  // (tearable) *before* the segment switch drops the old bytes — a crash
  // mid-checkpoint may lose the checkpoint, never the history behind it.
  sim::Simulation sim;
  MemWalStorage store;
  Wal wal(sim, "wal", store);
  wal.set_checkpoint_source([] { return std::string("{\"snap\":true}"); });
  wal.append(WalRecordType::kTxnBegin, "{\"txn\":1,\"region\":\"r0\"}");
  wal.append(WalRecordType::kTxnPhase, "{\"txn\":1,\"phase\":\"committed\"}");
  fault::CrashInjector injector({.wal_seq = 3, .corruption = WalCorruption::kTornWrite});
  injector.arm(wal);
  EXPECT_THROW(wal.checkpoint_now(), fault::ControllerCrash);
  EXPECT_TRUE(injector.crashed());
  const WalScan scan = scan_wal(store.read_all());
  ASSERT_EQ(scan.records.size(), 2u);  // the pre-checkpoint history survives
  EXPECT_EQ(scan.last_seq(), 2u);
  EXPECT_EQ(scan.tail, WalTailState::kTorn);  // only the checkpoint tore
}

TEST(WalTest, FileStorageRoundTripsAcrossReopen) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "uparc_wal_test.wal").string();
  std::remove(path.c_str());
  {
    sim::Simulation sim;
    FileWalStorage store(path);
    Wal wal(sim, "wal", store);
    wal.append(WalRecordType::kTxnBegin, "{\"txn\":1,\"region\":\"r0\"}");
    wal.append(WalRecordType::kGolden, "{\"txn\":1,\"frames\":[[1,2]]}");
  }
  FileWalStorage reopened(path);
  const WalScan scan = scan_wal(reopened.read_all());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1].type, WalRecordType::kGolden);
  EXPECT_EQ(scan.tail, WalTailState::kClean);
  std::remove(path.c_str());
}

TEST(WalLintTest, FlagsSeqGapAndBackwardsClock) {
  const Bytes log = concat({Wal::encode_record(1, TimePs{100}, WalRecordType::kHealth, "{}"),
                            Wal::encode_record(3, TimePs{50}, WalRecordType::kHealth, "{}")});
  const analysis::Report lint = analysis::lint_wal_bytes(log);
  EXPECT_TRUE(lint.has("wal.seq.gap"));
  EXPECT_TRUE(lint.has("wal.time.backwards"));
}

TEST(WalLintTest, FlagsTxnSemantics) {
  sim::Simulation sim;
  MemWalStorage store;
  Wal wal(sim, "wal", store);
  // txn 1: commits without a journaled golden. txn 2: phase for a txn that
  // never began. txn 1 then advances after its terminal.
  wal.append(WalRecordType::kTxnBegin, "{\"txn\":1,\"region\":\"r0\"}");
  wal.append(WalRecordType::kTxnPhase, "{\"txn\":1,\"phase\":\"committed\"}");
  wal.append(WalRecordType::kTxnPhase, "{\"txn\":2,\"phase\":\"forward\"}");
  wal.append(WalRecordType::kTxnPhase, "{\"txn\":1,\"phase\":\"forward\"}");
  wal.append(WalRecordType::kTxnBegin, "{\"txn\":3,\"region\":\"r1\"}");
  const analysis::Report lint = analysis::lint_wal_bytes(store.read_all());
  EXPECT_TRUE(lint.has("wal.golden.missing"));
  EXPECT_TRUE(lint.has("wal.txn.orphan"));
  EXPECT_TRUE(lint.has("wal.phase.after-terminal"));
  EXPECT_TRUE(lint.has("wal.txn.open"));
}

TEST(WalLintTest, BadPayloadAndUnknownTypeAreReported) {
  sim::Simulation sim;
  MemWalStorage store;
  Wal wal(sim, "wal", store);
  wal.append(WalRecordType::kHealth, "{not json");
  store.append(Wal::encode_record(2, TimePs{1}, static_cast<WalRecordType>(99), "{}"));
  const analysis::Report lint = analysis::lint_wal_bytes(store.read_all());
  EXPECT_TRUE(lint.has("wal.payload.bad-json"));
  EXPECT_TRUE(lint.has("wal.type.unknown"));
}

TEST(WalTest, RenderJsonIsDeterministic) {
  sim::Simulation sim;
  MemWalStorage store;
  Wal wal(sim, "wal", store);
  wal.append(WalRecordType::kTxnBegin, "{\"txn\":1,\"region\":\"r0\"}");
  wal.corrupt_tail(WalCorruption::kBitFlip);
  const WalScan scan = scan_wal(store.read_all());
  EXPECT_EQ(render_wal_json(scan), render_wal_json(scan_wal(store.read_all())));
  EXPECT_FALSE(render_wal_text(scan).empty());
}

}  // namespace
}  // namespace uparc::txn
