// Unit tests for the M/D search and DyCloGen.
#include <gtest/gtest.h>

#include "clocking/dyclogen.hpp"

namespace uparc::clocking {
namespace {

TEST(MdSearch, FindsThePapersOperatingPoint) {
  // The paper reaches 362.5 MHz from 100 MHz with M=29, D=8.
  auto c = closest(Frequency::mhz(100), Frequency::mhz(362.5));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->m, 29u);
  EXPECT_EQ(c->d, 8u);
  EXPECT_NEAR(c->f_out.in_mhz(), 362.5, 1e-9);
  EXPECT_NEAR(c->error_hz, 0.0, 1e-3);
}

TEST(MdSearch, ClosestNotAboveNeverOvershoots) {
  for (double target : {50.0, 126.0, 200.0, 255.0, 300.0, 362.5}) {
    auto c = closest_not_above(Frequency::mhz(100), Frequency::mhz(target));
    ASSERT_TRUE(c.has_value()) << target;
    EXPECT_LE(c->f_out.in_mhz(), target + 1e-9) << target;
    // And it should get within a few percent of any reasonable target.
    EXPECT_GT(c->f_out.in_mhz(), target * 0.95) << target;
  }
}

TEST(MdSearch, RespectsFmaxCeiling) {
  MdConstraints c;
  c.f_max = Frequency::mhz(150);
  auto best = closest(Frequency::mhz(100), Frequency::mhz(400), c);
  ASSERT_TRUE(best.has_value());
  EXPECT_LE(best->f_out.in_mhz(), 150.0 + 1e-9);
}

TEST(MdSearch, InfeasibleWhenCeilingBelowGrid) {
  MdConstraints c;
  c.f_max = Frequency::mhz(1);  // below min M/D output of 100*2/32
  EXPECT_FALSE(closest(Frequency::mhz(100), Frequency::mhz(5), c).has_value());
}

TEST(MdSearch, TiesPreferSmallerD) {
  // 200 MHz = 2/1 = 4/2 = 6/3 ...; expect D=1.
  auto c = closest(Frequency::mhz(100), Frequency::mhz(200));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->d, 1u);
  EXPECT_EQ(c->m, 2u);
}

class DyCloGenFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  DyCloGen gen{sim, "dyclogen", Frequency::mhz(100), TimePs::from_us(10)};
};

TEST_F(DyCloGenFixture, ThreeIndependentClocks) {
  bool done2 = false, done3 = false;
  auto c2 = gen.request_frequency(ClockId::kReconfig, Frequency::mhz(300),
                                  [&] { done2 = true; });
  auto c3 = gen.request_frequency(ClockId::kDecompress, Frequency::mhz(126),
                                  [&] { done3 = true; });
  ASSERT_TRUE(c2 && c3);
  sim.run();
  EXPECT_TRUE(done2);
  EXPECT_TRUE(done3);
  EXPECT_NEAR(gen.frequency(ClockId::kReconfig).in_mhz(), 300.0, 1e-9);
  EXPECT_LE(gen.frequency(ClockId::kDecompress).in_mhz(), 126.0 + 1e-9);
  EXPECT_GT(gen.frequency(ClockId::kDecompress).in_mhz(), 120.0);
  // CLK_1 untouched.
  EXPECT_NEAR(gen.frequency(ClockId::kPreload).in_mhz(), 100.0, 1e-9);
}

TEST_F(DyCloGenFixture, RetuneCostsDrpAccessesAndLockTime) {
  const TimePs before = sim.now();
  bool done = false;
  (void)gen.request_frequency(ClockId::kReconfig, Frequency::mhz(362.5), [&] { done = true; });
  EXPECT_EQ(gen.drp_accesses(), 3u);  // M, D, reset pulse
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE((sim.now() - before).ps(), TimePs::from_us(10).ps());
}

TEST_F(DyCloGenFixture, SameFrequencySkipsRelock) {
  (void)gen.request_frequency(ClockId::kReconfig, Frequency::mhz(200));
  sim.run();
  bool done = false;
  auto c = gen.request_frequency(ClockId::kReconfig, Frequency::mhz(200), [&] { done = true; });
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(done);  // fired synchronously, no relock
  EXPECT_EQ(gen.dcm(ClockId::kReconfig).relocks(), 1u);
}

TEST_F(DyCloGenFixture, PowerAwareRequestNeverOvershoots) {
  for (double target : {140.0, 222.0, 255.0}) {
    (void)gen.request_frequency(ClockId::kReconfig, Frequency::mhz(target));
    sim.run();
    EXPECT_LE(gen.frequency(ClockId::kReconfig).in_mhz(), target + 1e-9);
  }
}

}  // namespace
}  // namespace uparc::clocking
