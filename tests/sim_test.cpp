// Unit tests for the simulation kernel: event ordering, clocks, FIFOs, VCD.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/fifo.hpp"
#include "sim/kernel.hpp"
#include "sim/module.hpp"
#include "sim/vcd.hpp"

namespace uparc::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(TimePs(30), [&] { order.push_back(3); });
  sim.schedule_at(TimePs(10), [&] { order.push_back(1); });
  sim.schedule_at(TimePs(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ps(), 30u);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulation, SameTimeEventsFifoOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(TimePs(100), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule_at(TimePs(50), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePs(10), [] {}), std::logic_error);
}

TEST(Simulation, NestedSchedulingFromActions) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(TimePs(10), [&] {
    sim.schedule_in(TimePs(5), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ps(), 15u);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int count = 0;
  // Self-rescheduling event every 10 ps.
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule_in(TimePs(10), tick);
  };
  sim.schedule_at(TimePs(10), tick);
  sim.run_until(TimePs(55));
  EXPECT_EQ(count, 5);  // t = 10,20,30,40,50
  EXPECT_EQ(sim.now().ps(), 55u);
}

TEST(Simulation, EventBudgetGuardsInfiniteLoops) {
  Simulation sim;
  std::function<void()> forever = [&] { sim.schedule_in(TimePs(1), forever); };
  sim.schedule_at(TimePs(0), forever);
  EXPECT_THROW(sim.run(1000), std::runtime_error);
}

TEST(Simulation, RunExactBudgetDrainDoesNotThrow) {
  // Regression: a run needing exactly max_events used to throw "budget
  // exceeded" even though the final event drained the queue.
  Simulation sim;
  int fired = 0;
  for (u64 i = 1; i <= 5; ++i) {
    sim.schedule_at(TimePs(10 * i), [&] { ++fired; });
  }
  EXPECT_NO_THROW(sim.run(5));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, RunUntilExactBudgetDrainDoesNotThrow) {
  // Same off-by-one for run_until: exactly max_events inside the deadline
  // must succeed even when later events remain beyond the deadline.
  Simulation sim;
  int fired = 0;
  for (u64 i = 1; i <= 5; ++i) {
    sim.schedule_at(TimePs(10 * i), [&] { ++fired; });
  }
  sim.schedule_at(TimePs(1000), [&] { ++fired; });  // beyond the deadline
  EXPECT_NO_THROW(sim.run_until(TimePs(100), 5));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), TimePs(100));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, BudgetDiagnosticsNameTimeAndPending) {
  // Both budget exceptions carry the same shape: which entry point, the
  // budget, the simulated timestamp and the pending-event count.
  const auto check = [](const std::string& what, const char* which) {
    EXPECT_NE(what.find(which), std::string::npos) << what;
    EXPECT_NE(what.find("event budget"), std::string::npos) << what;
    EXPECT_NE(what.find("t="), std::string::npos) << what;
    EXPECT_NE(what.find("events pending"), std::string::npos) << what;
  };
  {
    Simulation sim;
    std::function<void()> forever = [&] { sim.schedule_in(TimePs(1), forever); };
    sim.schedule_at(TimePs(0), forever);
    try {
      sim.run(100);
      FAIL() << "run never hit its budget";
    } catch (const std::runtime_error& e) {
      check(e.what(), "Simulation::run ");
    }
  }
  {
    Simulation sim;
    std::function<void()> forever = [&] { sim.schedule_in(TimePs(1), forever); };
    sim.schedule_at(TimePs(0), forever);
    try {
      sim.run_until(TimePs(1000), 100);
      FAIL() << "run_until never hit its budget";
    } catch (const std::runtime_error& e) {
      check(e.what(), "Simulation::run_until ");
    }
  }
}

TEST(EventHeap, PopsInTimeThenSeqOrder) {
  // The explicit binary heap must agree with the (time, seq) order the old
  // priority_queue provided — including FIFO stability at equal times.
  EventHeap heap;
  heap.reserve(128);
  for (u64 i = 0; i < 100; ++i) {
    const u64 t = (i * 2654435761u) % 17;  // deterministic scrambled times
    heap.push(Event{TimePs(t), i, [] {}});
  }
  EXPECT_EQ(heap.size(), 100u);
  TimePs last_t{};
  u64 last_seq = 0;
  bool first = true;
  while (!heap.empty()) {
    const Event ev = heap.pop();
    if (!first) {
      EXPECT_TRUE(last_t < ev.time || (last_t == ev.time && last_seq < ev.seq))
          << "t=" << ev.time.ps() << " seq=" << ev.seq;
    }
    last_t = ev.time;
    last_seq = ev.seq;
    first = false;
  }
}

TEST(Simulation, ReserveEventsPreservesBehavior) {
  Simulation sim;
  sim.reserve_events(4096);
  std::vector<int> order;
  sim.schedule_at(TimePs(20), [&] { order.push_back(2); });
  sim.schedule_at(TimePs(10), [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulation, OwnershipHandoffCountsInTopology) {
  // The latch-reset protocol is audited via topology counters (rule
  // iso.shard.handoff): every release must pair with an adopt.
  Simulation sim;
  EXPECT_EQ(sim.topology().handoff_releases(), 0u);
  sim.release_ownership();
  sim.adopt_ownership();
  sim.release_ownership();
  sim.adopt_ownership();
  EXPECT_EQ(sim.topology().handoff_releases(), 2u);
  EXPECT_EQ(sim.topology().handoff_adopts(), 2u);
  // The kernel is usable again after the round-trip.
  int fired = 0;
  sim.schedule_at(TimePs(5), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Clock, TicksAtConfiguredPeriod) {
  Simulation sim;
  Clock clk(sim, "clk", Frequency::mhz(100));  // 10 ns period
  std::vector<u64> edge_times;
  clk.on_rising([&] {
    edge_times.push_back(sim.now().ps());
    if (edge_times.size() == 3) clk.disable();
  });
  clk.enable();
  sim.run();
  ASSERT_EQ(edge_times.size(), 3u);
  EXPECT_EQ(edge_times[0], 10'000u);
  EXPECT_EQ(edge_times[1], 20'000u);
  EXPECT_EQ(edge_times[2], 30'000u);
  EXPECT_EQ(clk.cycle_count(), 3u);
}

TEST(Clock, DisabledClockSchedulesNothing) {
  Simulation sim;
  Clock clk(sim, "clk", Frequency::mhz(100));
  clk.on_rising([] { FAIL() << "disabled clock must not tick"; });
  sim.run();  // queue drains immediately
  EXPECT_EQ(clk.cycle_count(), 0u);
}

TEST(Clock, RetuneTakesEffectNextEdge) {
  Simulation sim;
  Clock clk(sim, "clk", Frequency::mhz(100));
  std::vector<u64> edges;
  clk.on_rising([&] {
    edges.push_back(sim.now().ps());
    if (edges.size() == 1) clk.set_frequency(Frequency::mhz(200));  // 5 ns
    if (edges.size() == 3) clk.disable();
  });
  clk.enable();
  sim.run();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], 10'000u);
  EXPECT_EQ(edges[1], 15'000u);  // first edge at new 5 ns period
  EXPECT_EQ(edges[2], 20'000u);
}

TEST(Clock, ActiveTimeIntegratesEnableWindows) {
  Simulation sim;
  Clock clk(sim, "clk", Frequency::mhz(100));
  int edges = 0;
  clk.on_rising([&] {
    if (++edges == 5) clk.disable();
  });
  clk.enable();
  sim.run();
  EXPECT_EQ(clk.active_time().ps(), 50'000u);

  // Re-enable later; the second window adds on top.
  sim.schedule_in(TimePs(100'000), [&] { clk.enable(); });
  edges = 0;
  sim.run();
  EXPECT_GT(clk.active_time().ps(), 50'000u);
}

TEST(Clock, TwoDomainsInterleaveDeterministically) {
  Simulation sim;
  Clock fast(sim, "fast", Frequency::mhz(200));
  Clock slow(sim, "slow", Frequency::mhz(100));
  int fast_edges = 0, slow_edges = 0;
  fast.on_rising([&] {
    if (++fast_edges == 20) fast.disable();
  });
  slow.on_rising([&] {
    if (++slow_edges == 10) slow.disable();
  });
  fast.enable();
  slow.enable();
  sim.run();
  EXPECT_EQ(fast_edges, 20);
  EXPECT_EQ(slow_edges, 10);
  EXPECT_EQ(sim.now().ps(), 100'000u);
}

TEST(Fifo, PushPopOrder) {
  Fifo<u32> f("f", 4);
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_EQ(f.pop(), 1u);
  EXPECT_EQ(f.pop(), 2u);
  EXPECT_EQ(f.pop(), 3u);
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, OverflowAndUnderflowThrow) {
  Fifo<u32> f("f", 2);
  f.push(1);
  f.push(2);
  EXPECT_FALSE(f.can_push());
  EXPECT_THROW(f.push(3), std::logic_error);
  (void)f.pop();
  (void)f.pop();
  EXPECT_THROW((void)f.pop(), std::logic_error);
}

TEST(Fifo, ConservationAndHighWater) {
  Fifo<u32> f("f", 8);
  for (u32 i = 0; i < 6; ++i) f.push(i);
  for (int i = 0; i < 4; ++i) (void)f.pop();
  for (u32 i = 0; i < 3; ++i) f.push(i);
  EXPECT_EQ(f.total_pushed(), 9u);
  EXPECT_EQ(f.total_popped(), 4u);
  EXPECT_EQ(f.size(), f.total_pushed() - f.total_popped());
  EXPECT_EQ(f.max_occupancy(), 6u);
  EXPECT_THROW(Fifo<u32>("zero", 0), std::invalid_argument);
}

TEST(Module, NameAndStats) {
  Simulation sim;
  struct Dummy : Module {
    using Module::Module;
  } m(sim, "dummy");
  EXPECT_EQ(m.name(), "dummy");
  m.stats().add("words", 41);
  m.stats().add("words", 41);
  EXPECT_DOUBLE_EQ(m.stats().get("words"), 82.0);
  EXPECT_NE(m.stats().report().find("words = 82"), std::string::npos);
}

TEST(Vcd, RendersHeaderAndChanges) {
  VcdWriter vcd("top");
  auto clk = vcd.add_signal("clk", 1);
  auto bus = vcd.add_signal("data", 8);
  vcd.change(clk, TimePs(0), 0);
  vcd.change(clk, TimePs(10), 1);
  vcd.change(bus, TimePs(10), 0xA5);
  vcd.change(clk, TimePs(20), 0);
  std::string doc = vcd.render();
  EXPECT_NE(doc.find("$var wire 1"), std::string::npos);
  EXPECT_NE(doc.find("$var wire 8"), std::string::npos);
  EXPECT_NE(doc.find("#10"), std::string::npos);
  EXPECT_NE(doc.find("b10100101"), std::string::npos);
}

TEST(Vcd, DeduplicatesUnchangedValues) {
  VcdWriter vcd;
  auto s = vcd.add_signal("s", 1);
  vcd.change(s, TimePs(0), 1);
  vcd.change(s, TimePs(10), 1);  // no-op
  vcd.change(s, TimePs(20), 0);
  EXPECT_EQ(vcd.change_count(), 2u);
}

TEST(Vcd, SortsOutOfOrderChangesAtRender) {
  // Two modules flushing at their own cadence record interleaved times; the
  // rendered #timestamps must still be monotonic (IEEE 1364) with each time
  // emitted exactly once.
  VcdWriter vcd;
  auto a = vcd.add_signal("a", 1);
  auto b = vcd.add_signal("b", 8);
  vcd.change(a, TimePs(0), 1);
  vcd.change(a, TimePs(200), 0);
  vcd.change(b, TimePs(100), 0x7);  // recorded after #200, belongs at #100
  vcd.change(b, TimePs(150), 0x9);
  const std::string doc = vcd.render();

  std::vector<u64> stamps;
  for (std::size_t pos = doc.find('#'); pos != std::string::npos;
       pos = doc.find('#', pos + 1)) {
    stamps.push_back(std::stoull(doc.substr(pos + 1)));
  }
  ASSERT_EQ(stamps.size(), 4u);
  EXPECT_EQ(stamps, (std::vector<u64>{0, 100, 150, 200}));
  // b's change lands under #100, before a's #200 drop.
  EXPECT_LT(doc.find("b111 "), doc.find("#200"));
}

TEST(Vcd, StableOrderForSameTimeChanges) {
  VcdWriter vcd;
  auto a = vcd.add_signal("a", 1);
  auto b = vcd.add_signal("b", 1);
  vcd.change(b, TimePs(10), 1);  // recorded first at t=10
  vcd.change(a, TimePs(10), 1);
  const std::string doc = vcd.render();
  const std::size_t stamp = doc.find("#10");
  ASSERT_NE(stamp, std::string::npos);
  // Stable sort: recording order is preserved within the same timestamp.
  EXPECT_LT(doc.find("1\"", stamp), doc.find("1!", stamp));  // b's code is ", a's is !
}

TEST(Vcd, SixtyFourBitVectors) {
  VcdWriter vcd;
  auto wide = vcd.add_signal("wide", 64);
  vcd.change(wide, TimePs(0), ~u64{0});
  vcd.change(wide, TimePs(10), ~u64{0});  // dedup at full width
  vcd.change(wide, TimePs(20), u64{1} << 63);
  EXPECT_EQ(vcd.change_count(), 2u);
  const std::string doc = vcd.render();
  EXPECT_NE(doc.find("$var wire 64"), std::string::npos);
  EXPECT_NE(doc.find("b" + std::string(64, '1') + " "), std::string::npos);
  EXPECT_NE(doc.find("b1" + std::string(63, '0') + " "), std::string::npos);
}

TEST(Vcd, RejectsBadSignals) {
  VcdWriter vcd;
  EXPECT_THROW((void)vcd.add_signal("w0", 0), std::invalid_argument);
  EXPECT_THROW((void)vcd.add_signal("w65", 65), std::invalid_argument);
  EXPECT_THROW(vcd.change(99, TimePs(0), 1), std::out_of_range);
}

}  // namespace
}  // namespace uparc::sim
