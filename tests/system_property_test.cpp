// System-level property sweeps (TEST_P): invariants that must hold across
// the whole operating envelope, not just at the paper's anchor points.
#include <gtest/gtest.h>

#include "bitstream/relocate.hpp"
#include "core/system.hpp"

namespace uparc {
namespace {

using namespace uparc::literals;

bits::PartialBitstream make_bs(std::size_t bytes, u64 seed,
                               bits::FrameAddress start = {0, 0, 0, 10, 0}) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  cfg.start_address = start;
  return bits::Generator(cfg).generate();
}

// ---------------------------------------------------------- bandwidth grid

struct GridPoint {
  std::size_t kb;
  double mhz;
};

void PrintTo(const GridPoint& p, std::ostream* os) { *os << p.kb << "KB@" << p.mhz << "MHz"; }

class BandwidthGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(BandwidthGrid, DeliversVerifiedAndBounded) {
  const auto [kb, mhz] = GetParam();
  core::System sys;
  auto bs = make_bs(kb * 1024, 1);
  (void)sys.set_frequency_blocking(Frequency::mhz(mhz));
  ASSERT_TRUE(sys.stage(bs).ok());
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;

  // 1. Data correctness at every operating point.
  EXPECT_TRUE(sys.plane().contains(bs.frames));
  // 2. Bandwidth strictly below the 4-bytes-per-cycle theoretical bound.
  const double actual_mhz = sys.uparc().dyclogen().frequency(clocking::ClockId::kReconfig)
                                .in_mhz();
  EXPECT_LT(r.bandwidth().mb_per_sec(), actual_mhz * 4.0 + 1e-6);
  // 3. ...but within 30% of it (the overhead is bounded).
  EXPECT_GT(r.bandwidth().mb_per_sec(), actual_mhz * 4.0 * 0.70);
  // 4. Energy is positive and consistent with the rail.
  EXPECT_GT(r.energy_uj, 0.0);
  EXPECT_NEAR(r.energy_uj, sys.rail()->energy_uj(r.start, r.end), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BandwidthGrid,
    ::testing::Values(GridPoint{8, 50}, GridPoint{8, 150}, GridPoint{8, 362.5},
                      GridPoint{64, 50}, GridPoint{64, 200}, GridPoint{64, 362.5},
                      GridPoint{200, 100}, GridPoint{200, 250}, GridPoint{200, 362.5}),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      return std::to_string(info.param.kb) + "KB_" +
             std::to_string(static_cast<int>(info.param.mhz)) + "MHz";
    });

TEST(BandwidthMonotonicity, InFrequencyAndSize) {
  // Bandwidth grows monotonically with frequency (fixed size) and with
  // bitstream size (fixed frequency) — Fig. 5's surface shape.
  auto bw_at = [](std::size_t kb, double mhz) {
    core::System sys;
    auto bs = make_bs(kb * 1024, 1);
    (void)sys.set_frequency_blocking(Frequency::mhz(mhz));
    EXPECT_TRUE(sys.stage(bs).ok());
    auto r = sys.reconfigure_blocking();
    EXPECT_TRUE(r.success);
    return r.bandwidth().mb_per_sec();
  };

  double prev = 0;
  for (double mhz : {50.0, 100.0, 200.0, 300.0, 362.5}) {
    const double bw = bw_at(64, mhz);
    EXPECT_GT(bw, prev) << mhz;
    prev = bw;
  }
  prev = 0;
  for (std::size_t kb : {6, 16, 49, 120, 247}) {
    const double bw = bw_at(kb, 362.5);
    EXPECT_GT(bw, prev) << kb;
    prev = bw;
  }
}

// ------------------------------------------------------- relocation sweep

struct RelocCase {
  u64 seed;
  bits::FrameAddress target;
};

class RelocSweep : public ::testing::TestWithParam<RelocCase> {};

TEST_P(RelocSweep, RelocateLoadVerify) {
  const auto& c = GetParam();
  core::System sys;
  auto bs = make_bs(24_KiB, c.seed);
  auto moved = bits::relocate(bs, c.target);
  ASSERT_TRUE(moved.ok()) << moved.error().message;
  ASSERT_TRUE(sys.stage(moved.value()).ok());
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(moved.value().frames));
  EXPECT_EQ(moved.value().frames.front().address, c.target);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RelocSweep,
    ::testing::Values(RelocCase{1, {0, 0, 0, 1, 0}}, RelocCase{2, {0, 1, 0, 1, 0}},
                      RelocCase{3, {0, 0, 7, 200, 0}}, RelocCase{4, {0, 0, 3, 128, 64}},
                      RelocCase{5, {0, 1, 31, 255, 0}}, RelocCase{6, {0, 0, 0, 0, 1}}),
    [](const ::testing::TestParamInfo<RelocCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_idx" +
             std::to_string(info.param.target.linear_index());
    });

// ----------------------------------------------------------- M/D synthesis

class MdSynthesisSweep : public ::testing::TestWithParam<int> {};

TEST_P(MdSynthesisSweep, NotAboveAndTight) {
  const double target = GetParam();
  auto c = clocking::closest_not_above(Frequency::mhz(100), Frequency::mhz(target));
  ASSERT_TRUE(c.has_value());
  // Invariant 1: never overshoot.
  EXPECT_LE(c->f_out.in_mhz(), target + 1e-9);
  // Invariant 2: exact ratio.
  EXPECT_NEAR(c->f_out.in_mhz(), 100.0 * c->m / c->d, 1e-9);
  // Invariant 3: within 4% of any target in the DCM's usable band.
  EXPECT_GT(c->f_out.in_mhz(), target * 0.96);
}

INSTANTIATE_TEST_SUITE_P(Band, MdSynthesisSweep,
                         ::testing::Range(40, 440, 23));  // 40..431 MHz

// ----------------------------------------------------- adaptation coverage

class DeadlineSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeadlineSweep, MinPowerAlwaysMeetsFeasibleDeadlines) {
  const double deadline_us = GetParam();
  core::System sys;
  auto bs = make_bs(100_KiB, 2);
  ASSERT_TRUE(sys.stage(bs).ok());
  auto plan = sys.adapt_blocking(manager::FrequencyPolicy::kMinPowerDeadline,
                                 TimePs::from_us(deadline_us));
  if (!plan.has_value()) {
    // Infeasible: even max frequency misses. Verify that claim.
    const double min_us = 1.25 + 100.0 * 1024 / (4.0 * 366.0);  // overhead + transfer
    EXPECT_LT(deadline_us, min_us * 1.02);
    return;
  }
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_LE(r.duration().us(), deadline_us * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Band, DeadlineSweep,
                         ::testing::Values(40, 75, 120, 200, 400, 800, 1600, 5000));

// ------------------------------------------------- compressed-mode corpus

class CompressedSweep : public ::testing::TestWithParam<u64> {};

TEST_P(CompressedSweep, OversizedBitstreamsRoundTripThroughDecompressor) {
  core::System sys;
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = 400_KiB + GetParam() * 50_KiB;
  cfg.seed = GetParam() * 31 + 7;
  cfg.complexity = 0.3 + 0.1 * static_cast<double>(GetParam() % 4);
  auto bs = bits::Generator(cfg).generate();

  auto st = sys.stage(bs);
  ASSERT_TRUE(st.ok()) << st.error().message;
  EXPECT_TRUE(sys.uparc().staged_compressed());
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(bs.frames));
}

INSTANTIATE_TEST_SUITE_P(Corpus, CompressedSweep, ::testing::Range<u64>(0, 6));

}  // namespace
}  // namespace uparc
