// Unit tests for bitstream relocation and the scrubbing subsystem (SEU
// injector, readback, scrubber).
#include <gtest/gtest.h>

#include "bitstream/parser.hpp"
#include "bitstream/relocate.hpp"
#include "core/system.hpp"
#include "fault/injector.hpp"
#include "scrub/scrubber.hpp"
#include "scrub/seu.hpp"

namespace uparc {
namespace {

using namespace uparc::literals;

bits::PartialBitstream make_bs(std::size_t bytes, u64 seed = 1,
                               bits::FrameAddress start = {0, 0, 0, 10, 0}) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  cfg.start_address = start;
  return bits::Generator(cfg).generate();
}

std::vector<bits::FrameAddress> addresses_of(const bits::PartialBitstream& bs) {
  std::vector<bits::FrameAddress> out;
  for (const auto& f : bs.frames) out.push_back(f.address);
  return out;
}

// ------------------------------------------------------------- relocation

TEST(Relocate, MovesFramesToNewRegionWithValidCrc) {
  auto bs = make_bs(16_KiB, 5);
  const bits::FrameAddress target{0, 1, 3, 77, 0};
  auto moved = bits::relocate(bs, target);
  ASSERT_TRUE(moved.ok()) << moved.error().message;

  auto parsed = bits::parse_body(bits::kVirtex5Sx50t, moved.value().body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().crc_ok);
  EXPECT_EQ(parsed.value().start_address, target);
  ASSERT_EQ(parsed.value().frames.size(), bs.frames.size());
  // Same content, different addresses.
  for (std::size_t i = 0; i < bs.frames.size(); ++i) {
    EXPECT_EQ(parsed.value().frames[i].data, bs.frames[i].data);
  }
  EXPECT_NE(parsed.value().frames[0].address, bs.frames[0].address);
}

TEST(Relocate, RelocatedBitstreamLoadsThroughUparc) {
  core::System sys;
  auto bs = make_bs(32_KiB, 6);
  const bits::FrameAddress target{0, 0, 4, 50, 0};
  auto moved = bits::relocate(bs, target);
  ASSERT_TRUE(moved.ok());

  ASSERT_TRUE(sys.stage(moved.value()).ok());
  auto r = sys.reconfigure_blocking();
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(sys.plane().contains(moved.value().frames));
  EXPECT_FALSE(sys.plane().contains(bs.frames));  // not at the old address
}

TEST(Relocate, SameImageServesTwoRegions) {
  core::System sys;
  auto bs = make_bs(16_KiB, 7);
  auto copy_a = bits::relocate(bs, bits::FrameAddress{0, 0, 1, 30, 0});
  auto copy_b = bits::relocate(bs, bits::FrameAddress{0, 0, 2, 60, 0});
  ASSERT_TRUE(copy_a.ok() && copy_b.ok());

  for (const auto* m : {&copy_a.value(), &copy_b.value()}) {
    ASSERT_TRUE(sys.stage(*m).ok());
    ASSERT_TRUE(sys.reconfigure_blocking().success);
  }
  EXPECT_TRUE(sys.plane().contains(copy_a.value().frames));
  EXPECT_TRUE(sys.plane().contains(copy_b.value().frames));
}

TEST(Relocate, RejectsBodiesWithoutFarOrCrc) {
  bits::PacketWriter pw;
  pw.prologue();
  pw.command(bits::Command::kDesync);
  auto r = bits::relocate_body(bits::kVirtex5Sx50t, pw.words(), bits::FrameAddress{});
  ASSERT_FALSE(r.ok());
}

TEST(Relocate, RoundTripBackToOriginalAddress) {
  auto bs = make_bs(8_KiB, 9);
  auto there = bits::relocate(bs, bits::FrameAddress{0, 1, 0, 99, 0});
  ASSERT_TRUE(there.ok());
  auto back = bits::relocate(there.value(), bs.frames[0].address);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().body, bs.body);
}

// ------------------------------------------------------------ SEU injector

TEST(Seu, InjectNowCorruptsExactlyOneBit) {
  sim::Simulation sim;
  icap::ConfigPlane plane(sim, "plane", bits::kVirtex5Sx50t);
  auto bs = make_bs(8_KiB, 3);
  for (const auto& f : bs.frames) plane.write_frame(f.address, f.data);

  scrub::SeuInjector seu(sim, "seu", plane, addresses_of(bs), TimePs::from_ms(1), 42);
  auto ev = seu.inject_now();
  const Words* frame = plane.read_frame(ev.frame);
  ASSERT_NE(frame, nullptr);

  // Exactly the logged bit differs from golden.
  const bits::Frame* golden = nullptr;
  for (const auto& f : bs.frames) {
    if (f.address == ev.frame) golden = &f;
  }
  ASSERT_NE(golden, nullptr);
  for (u32 i = 0; i < frame->size(); ++i) {
    const u32 diff = (*frame)[i] ^ golden->data[i];
    if (i == ev.word_index) {
      EXPECT_EQ(diff, 1u << ev.bit_index);
    } else {
      EXPECT_EQ(diff, 0u);
    }
  }
}

TEST(Seu, PeriodicInjectionAtConfiguredRate) {
  sim::Simulation sim;
  icap::ConfigPlane plane(sim, "plane", bits::kVirtex5Sx50t);
  auto bs = make_bs(8_KiB, 3);
  for (const auto& f : bs.frames) plane.write_frame(f.address, f.data);

  scrub::SeuInjector seu(sim, "seu", plane, addresses_of(bs), TimePs::from_ms(1), 7);
  seu.start();
  sim.run_until(TimePs::from_ms(50));
  seu.stop();
  sim.run();
  // Mean interval 1 ms over 50 ms: ~50 events (jitter is [0.5, 1.5]x).
  EXPECT_GE(seu.injected(), 35u);
  EXPECT_LE(seu.injected(), 70u);
  EXPECT_THROW(scrub::SeuInjector(sim, "bad", plane, {}, TimePs::from_ms(1)),
               std::invalid_argument);
}

// --------------------------------------------------------------- readback

TEST(ReadbackTest, CleanRegionVerifiesThroughTheIcap) {
  sim::Simulation sim;
  icap::ConfigPlane plane(sim, "plane", bits::kVirtex5Sx50t);
  icap::Icap port(sim, "icap", plane);
  auto bs = make_bs(16_KiB, 3);
  for (const auto& f : bs.frames) plane.write_frame(f.address, f.data);

  scrub::Readback rb(sim, "rb", port);
  scrub::GoldenSignature golden(bs.frames);
  std::optional<scrub::ReadbackReport> report;
  rb.verify_region(golden, [&](const scrub::ReadbackReport& r) { report = r; });
  sim.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->words_read, bs.frames.size() * 41);
  EXPECT_EQ(port.words_read_back(), report->words_read);
  // One data word per cycle plus one command word per cycle (sync, FAR,
  // RCFG, FDRO read headers — one contiguous run => 7 command words).
  EXPECT_EQ(report->command_words, 7u);
  const u64 cycles = report->command_words + report->words_read;
  EXPECT_EQ(report->duration.ps(), cycles * 10'000);  // 100 MHz
}

TEST(ReadbackTest, DetectsCorruptAndMissingFrames) {
  sim::Simulation sim;
  icap::ConfigPlane plane(sim, "plane", bits::kVirtex5Sx50t);
  icap::Icap port(sim, "icap", plane);
  auto bs = make_bs(16_KiB, 3);
  for (const auto& f : bs.frames) plane.write_frame(f.address, f.data);

  // Corrupt one frame; also check a signature for a frame that was never
  // written (reads back as zeros => CRC mismatch).
  Words bad = bs.frames[2].data;
  bad[7] ^= 0x8;
  plane.write_frame(bs.frames[2].address, bad);

  auto frames_plus = bs.frames;
  bits::Frame ghost;
  ghost.address = bits::FrameAddress{0, 1, 7, 1, 1};
  ghost.data = Words(41, 0x123u);
  frames_plus.push_back(ghost);

  scrub::Readback rb(sim, "rb", port);
  scrub::GoldenSignature golden(frames_plus);
  std::optional<scrub::ReadbackReport> report;
  rb.verify_region(golden, [&](const scrub::ReadbackReport& r) { report = r; });
  sim.run();
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->mismatches.size(), 2u);
  // The ghost frame is a separate run: two runs => extra FAR/RCFG/read
  // commands for the second (6 more command words).
  EXPECT_EQ(report->command_words, 13u);
}

TEST(ReadbackTest, SwallowedReadCommandStallsOutInsteadOfHanging) {
  // A faulted port can corrupt the readback's own command words (here: the
  // sync word, so every subsequent write is silently ignored) without ever
  // raising an error. The readout phase then never produces a word; the
  // stall guard must terminate the pass conservatively instead of letting
  // the readback clock tick forever.
  sim::Simulation sim;
  icap::ConfigPlane plane(sim, "plane", bits::kVirtex5Sx50t);
  icap::Icap port(sim, "icap", plane);
  auto bs = make_bs(16_KiB, 3);
  for (const auto& f : bs.frames) plane.write_frame(f.address, f.data);

  fault::FaultPlan plan;
  plan.seed = 5;
  plan.arm(fault::FaultSite::kIcapCorrupt, {.rate = 1.0});
  fault::FaultInjector inj(sim, "inj", plan);
  inj.arm_icap(port);

  scrub::Readback rb(sim, "rb", port);
  scrub::GoldenSignature golden(bs.frames);
  std::optional<scrub::ReadbackReport> report;
  rb.verify_region(golden, [&](const scrub::ReadbackReport& r) { report = r; });
  sim.run();

  ASSERT_TRUE(report.has_value()) << "readback never terminated";
  EXPECT_TRUE(report->stalled);
  EXPECT_FALSE(report->clean());
  // Every frame of the (single) run is suspect.
  EXPECT_EQ(report->mismatches.size(), bs.frames.size());
  EXPECT_EQ(report->words_read, 0u);
  EXPECT_FALSE(rb.busy());
}

TEST(ReadbackTest, BusyGuardAndIdempotentReuse) {
  sim::Simulation sim;
  icap::ConfigPlane plane(sim, "plane", bits::kVirtex5Sx50t);
  icap::Icap port(sim, "icap", plane);
  auto bs = make_bs(8_KiB, 4);
  for (const auto& f : bs.frames) plane.write_frame(f.address, f.data);
  scrub::GoldenSignature golden(bs.frames);

  scrub::Readback rb(sim, "rb", port);
  int completions = 0;
  rb.verify_region(golden, [&](const scrub::ReadbackReport&) { ++completions; });
  EXPECT_TRUE(rb.busy());
  EXPECT_THROW(rb.verify_region(golden, [](const scrub::ReadbackReport&) {}),
               std::logic_error);
  sim.run();
  // Reusable after completion.
  rb.verify_region(golden, [&](const scrub::ReadbackReport&) { ++completions; });
  sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(rb.runs(), 2u);
}

TEST(ReadbackTest, GoldenSignatureLookup) {
  auto bs = make_bs(8_KiB, 4);
  scrub::GoldenSignature golden(bs.frames);
  EXPECT_EQ(golden.frame_count(), bs.frames.size());
  EXPECT_NE(golden.expected_crc(bs.frames[0].address), nullptr);
  EXPECT_EQ(*golden.expected_crc(bs.frames[0].address), crc32_words(bs.frames[0].data));
  EXPECT_EQ(golden.expected_crc(bits::FrameAddress{7, 0, 1, 2, 3}), nullptr);
}

// --------------------------------------------------------------- scrubber

class ScrubberFixture : public ::testing::Test {
 protected:
  void stage_golden() {
    golden = make_bs(32_KiB, 8);
    ASSERT_TRUE(sys.stage(golden).ok());
    auto r = sys.reconfigure_blocking();  // initial configuration
    ASSERT_TRUE(r.success);
  }

  core::System sys;
  bits::PartialBitstream golden;
};

TEST_F(ScrubberFixture, ReadbackDrivenRepairsOnlyWhenCorrupted) {
  stage_golden();
  scrub::Readback rb(sys.sim(), "rb", sys.icap());
  scrub::ScrubberConfig cfg;
  cfg.mode = scrub::ScrubMode::kReadbackDriven;
  scrub::Scrubber scrubber(sys.sim(), "scrubber", sys.uparc(), rb, golden.frames, cfg);

  // Clean round: no repair.
  bool repaired = true;
  scrubber.scrub_once([&](bool did) { repaired = did; });
  sys.sim().run();
  EXPECT_FALSE(repaired);
  EXPECT_EQ(scrubber.scrub_stats().repairs, 0u);

  // Corrupt, then scrub: repair happens and the plane is golden again.
  scrub::SeuInjector seu(sys.sim(), "seu", sys.plane(), addresses_of(golden),
                         TimePs::from_ms(1), 3);
  (void)seu.inject_now();
  EXPECT_FALSE(sys.plane().contains(golden.frames));
  scrubber.scrub_once([&](bool did) { repaired = did; });
  sys.sim().run();
  EXPECT_TRUE(repaired);
  EXPECT_EQ(scrubber.scrub_stats().repairs, 1u);
  EXPECT_EQ(scrubber.scrub_stats().mismatched_frames, 1u);
  EXPECT_TRUE(sys.plane().contains(golden.frames));
}

TEST_F(ScrubberFixture, BlindModeAlwaysRepairs) {
  stage_golden();
  scrub::Readback rb(sys.sim(), "rb", sys.icap());
  scrub::ScrubberConfig cfg;
  cfg.mode = scrub::ScrubMode::kBlind;
  scrub::Scrubber scrubber(sys.sim(), "scrubber", sys.uparc(), rb, golden.frames, cfg);

  for (int i = 0; i < 3; ++i) {
    bool repaired = false;
    scrubber.scrub_once([&](bool did) { repaired = did; });
    sys.sim().run();
    EXPECT_TRUE(repaired);
  }
  EXPECT_EQ(scrubber.scrub_stats().repairs, 3u);
  EXPECT_EQ(scrubber.scrub_stats().readback_time.ps(), 0u);
}

TEST_F(ScrubberFixture, FrameRepairFixesOnlyDamagedFrames) {
  stage_golden();
  scrub::Readback rb(sys.sim(), "rb", sys.icap());
  scrub::ScrubberConfig cfg;
  cfg.mode = scrub::ScrubMode::kFrameRepair;
  scrub::Scrubber scrubber(sys.sim(), "scrubber", sys.uparc(), rb, golden.frames, cfg);

  // Corrupt three distinct frames.
  scrub::SeuInjector seu(sys.sim(), "seu", sys.plane(), addresses_of(golden),
                         TimePs::from_ms(1), 11);
  for (int i = 0; i < 3; ++i) (void)seu.inject_now();

  bool repaired = false;
  scrubber.scrub_once([&](bool did) { repaired = did; });
  sys.sim().run();
  EXPECT_TRUE(repaired);
  EXPECT_TRUE(sys.plane().contains(golden.frames));
  // Each damaged frame repaired individually (3 upsets may share a frame).
  EXPECT_GE(scrubber.scrub_stats().repairs, 1u);
  EXPECT_LE(scrubber.scrub_stats().repairs, 3u);
  EXPECT_EQ(scrubber.scrub_stats().mismatched_frames, scrubber.scrub_stats().repairs);
}

TEST_F(ScrubberFixture, FrameRepairIsMuchFasterThanFullRewrite) {
  stage_golden();
  scrub::Readback rb(sys.sim(), "rb", sys.icap());
  scrub::SeuInjector seu(sys.sim(), "seu", sys.plane(), addresses_of(golden),
                         TimePs::from_ms(1), 13);

  // Full-region rewrite cost.
  scrub::ScrubberConfig full_cfg;
  full_cfg.mode = scrub::ScrubMode::kReadbackDriven;
  scrub::Scrubber full(sys.sim(), "full", sys.uparc(), rb, golden.frames, full_cfg);
  (void)seu.inject_now();
  full.scrub_once([](bool) {});
  sys.sim().run();
  const TimePs full_repair = full.scrub_stats().repair_time;

  // Single-frame repair cost.
  scrub::ScrubberConfig frame_cfg;
  frame_cfg.mode = scrub::ScrubMode::kFrameRepair;
  scrub::Scrubber frame(sys.sim(), "frame", sys.uparc(), rb, golden.frames, frame_cfg);
  (void)seu.inject_now();
  frame.scrub_once([](bool) {});
  sys.sim().run();
  const TimePs frame_repair = frame.scrub_stats().repair_time;

  EXPECT_LT(frame_repair.ps() * 5, full_repair.ps());
  EXPECT_TRUE(sys.plane().contains(golden.frames));
}

TEST(FrameRepairBitstream, IsSelfContainedAndValid) {
  auto bs = [] {
    bits::GeneratorConfig cfg;
    cfg.target_body_bytes = 8_KiB;
    return bits::Generator(cfg).generate();
  }();
  auto mini = scrub::Scrubber::make_frame_repair_bitstream(bits::kVirtex5Sx50t, bs.frames[3]);
  EXPECT_LT(mini.body_bytes(), 300u);  // prologue + headers + 41 words
  auto parsed = bits::parse_body(bits::kVirtex5Sx50t, mini.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().crc_ok);
  ASSERT_EQ(parsed.value().frames.size(), 1u);
  EXPECT_EQ(parsed.value().frames[0].address, bs.frames[3].address);
  EXPECT_EQ(parsed.value().frames[0].data, bs.frames[3].data);
}

TEST_F(ScrubberFixture, PeriodicScrubbingKeepsRegionGoldenUnderUpsets) {
  stage_golden();
  scrub::Readback rb(sys.sim(), "rb", sys.icap());
  scrub::ScrubberConfig cfg;
  cfg.period = TimePs::from_ms(2);
  scrub::Scrubber scrubber(sys.sim(), "scrubber", sys.uparc(), rb, golden.frames, cfg);
  scrub::SeuInjector seu(sys.sim(), "seu", sys.plane(), addresses_of(golden),
                         TimePs::from_ms(5), 17);

  scrubber.start();
  seu.start();
  sys.sim().run_until(TimePs::from_ms(100));
  seu.stop();
  sys.sim().run_until(TimePs::from_ms(110));  // final scrub rounds
  scrubber.stop();
  sys.sim().run();

  EXPECT_GT(seu.injected(), 10u);
  EXPECT_GT(scrubber.scrub_stats().rounds, 40u);
  EXPECT_GE(scrubber.scrub_stats().repairs, seu.injected() / 2);  // bursts coalesce
  EXPECT_TRUE(sys.plane().contains(golden.frames));
}

}  // namespace
}  // namespace uparc
