// Tests for the online EDF scheduler.
#include <gtest/gtest.h>

#include "sched/online.hpp"

namespace uparc::sched {
namespace {

using namespace uparc::literals;

std::vector<bits::PartialBitstream> two_images() {
  std::vector<bits::PartialBitstream> images;
  bits::GeneratorConfig g;
  g.target_body_bytes = 48_KiB;
  g.seed = 71;
  images.push_back(bits::Generator(g).generate());
  g.target_body_bytes = 24_KiB;
  g.seed = 72;
  images.push_back(bits::Generator(g).generate());
  return images;
}

core::SystemConfig fsm_cfg() {
  core::SystemConfig cfg;
  cfg.uparc.manager = manager::hardware_fsm_profile();  // fast preloads
  return cfg;
}

TEST(Online, CompletesJobsAndMeetsDeadlines) {
  core::System sys(fsm_cfg());
  OnlineScheduler sched(sys, "online", two_images());

  sched.submit({"j0", 0, sys.sim().now() + TimePs::from_ms(5), TimePs::from_us(300)});
  sched.submit({"j1", 1, sys.sim().now() + TimePs::from_ms(10), TimePs::from_us(200)});
  sys.sim().run();

  const auto& st = sched.online_stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.missed, 0u);
  EXPECT_EQ(st.failed, 0u);
  ASSERT_EQ(sched.records().size(), 2u);
  for (const auto& r : sched.records()) {
    EXPECT_TRUE(r.success) << r.error;
    EXPECT_TRUE(r.deadline_met);
    EXPECT_GT(r.energy_uj, 0.0);
  }
}

TEST(Online, EdfOrdersByDeadlineNotSubmission) {
  core::System sys(fsm_cfg());
  OnlineScheduler sched(sys, "online", two_images());

  // Make the region busy first so both later jobs sit queued together.
  sched.submit({"head", 0, sys.sim().now() + TimePs::from_ms(50), TimePs::from_ms(2)});
  // Submitted in reverse deadline order:
  sched.submit({"late", 0, sys.sim().now() + TimePs::from_ms(40), TimePs::from_us(100)});
  sched.submit({"urgent", 1, sys.sim().now() + TimePs::from_ms(8), TimePs::from_us(100)});
  EXPECT_EQ(sched.queue_depth(), 2u);
  sys.sim().run();

  ASSERT_EQ(sched.records().size(), 3u);
  EXPECT_EQ(sched.records()[0].job.name, "head");
  EXPECT_EQ(sched.records()[1].job.name, "urgent");  // EDF picked it first
  EXPECT_EQ(sched.records()[2].job.name, "late");
  EXPECT_EQ(sched.online_stats().missed, 0u);
}

TEST(Online, PowerAwarePolicySlowsDownWithSlack) {
  core::System relaxed_sys(fsm_cfg()), tight_sys(fsm_cfg());
  OnlineScheduler relaxed(relaxed_sys, "relaxed", two_images(),
                          manager::FrequencyPolicy::kMinPowerDeadline);
  OnlineScheduler tight(tight_sys, "tight", two_images(),
                        manager::FrequencyPolicy::kMinPowerDeadline);

  relaxed.submit({"slacky", 0, TimePs::from_ms(20), TimePs::from_us(100)});
  relaxed_sys.sim().run();
  tight.submit({"rushed", 0, TimePs::from_us(900), TimePs::from_us(100)});
  tight_sys.sim().run();

  ASSERT_EQ(relaxed.records().size(), 1u);
  ASSERT_EQ(tight.records().size(), 1u);
  EXPECT_LT(relaxed.records()[0].frequency.in_mhz(), tight.records()[0].frequency.in_mhz());
  EXPECT_TRUE(relaxed.records()[0].deadline_met);
  EXPECT_TRUE(tight.records()[0].deadline_met);
}

TEST(Online, ImpossibleDeadlineBestEffortAndCounted) {
  core::System sys(fsm_cfg());
  OnlineScheduler sched(sys, "online", two_images());
  // Deadline already essentially expired: best effort at max frequency.
  sched.submit({"doomed", 0, sys.sim().now() + TimePs::from_us(1), TimePs::from_us(50)});
  sys.sim().run();
  ASSERT_EQ(sched.records().size(), 1u);
  EXPECT_TRUE(sched.records()[0].success);
  EXPECT_FALSE(sched.records()[0].deadline_met);
  EXPECT_EQ(sched.online_stats().missed, 1u);
  EXPECT_GT(sched.records()[0].frequency.in_mhz(), 300.0);  // ran flat out
}

TEST(Online, RejectsUnknownImage) {
  core::System sys;
  OnlineScheduler sched(sys, "online", two_images());
  EXPECT_THROW(sched.submit({"bad", 9, TimePs::from_ms(1), TimePs::from_us(1)}),
               std::invalid_argument);
}

TEST(Online, DynamicArrivalsDuringExecution) {
  core::System sys(fsm_cfg());
  OnlineScheduler sched(sys, "online", two_images());

  sched.submit({"first", 0, TimePs::from_ms(5), TimePs::from_ms(1)});
  // Arrivals while the first job runs.
  sys.sim().schedule_at(TimePs::from_us(500), [&] {
    sched.submit({"second", 1, TimePs::from_ms(12), TimePs::from_us(200)});
  });
  sys.sim().schedule_at(TimePs::from_us(800), [&] {
    sched.submit({"third", 0, TimePs::from_ms(9), TimePs::from_us(200)});
  });
  sys.sim().run();

  ASSERT_EQ(sched.records().size(), 3u);
  EXPECT_EQ(sched.online_stats().completed, 3u);
  EXPECT_EQ(sched.online_stats().missed, 0u);
  // "third" (deadline 9 ms) overtook "second" (12 ms) in the EDF queue.
  EXPECT_EQ(sched.records()[1].job.name, "third");
}

}  // namespace
}  // namespace uparc::sched
