// Chaos-soak harness tests: bounded randomized transactional
// reconfiguration under fault injection must hold every invariant. The CI
// job and `uparc_cli soak` run longer versions of exactly this.
#include <gtest/gtest.h>

#include "txn/soak.hpp"

namespace uparc::txn {
namespace {

TEST(SoakTest, ZeroFaultSoakCommitsEverything) {
  SoakConfig cfg;
  cfg.transactions = 60;
  cfg.fault_scale = 0.0;
  auto report = run_soak(cfg);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.commits, cfg.transactions);
  EXPECT_EQ(report.rollbacks_last_good + report.rollbacks_blank, 0u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.software_fallbacks, 0u);
  EXPECT_EQ(report.fault_fires, 0u);
}

TEST(SoakTest, FullRateChaosHoldsEveryInvariant) {
  SoakConfig cfg;
  cfg.transactions = 150;
  cfg.seed = 11;
  auto report = run_soak(cfg);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.transactions, cfg.transactions);
  EXPECT_GT(report.fault_fires, 0u);  // chaos actually ran
  EXPECT_GT(report.commits, 0u);      // and the system survived it
  EXPECT_FALSE(report.journal_json.empty());
  EXPECT_FALSE(report.metrics_json.empty());
}

TEST(SoakTest, DeterministicAcrossRuns) {
  SoakConfig cfg;
  cfg.transactions = 40;
  cfg.seed = 5;
  auto a = run_soak(cfg);
  auto b = run_soak(cfg);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.rollbacks_last_good, b.rollbacks_last_good);
  EXPECT_EQ(a.rollbacks_blank, b.rollbacks_blank);
  EXPECT_EQ(a.fault_fires, b.fault_fires);
  EXPECT_EQ(a.journal_json, b.journal_json);
}

TEST(SoakTest, SummaryMentionsViolationsWhenClean) {
  SoakConfig cfg;
  cfg.transactions = 10;
  cfg.fault_scale = 0.0;
  auto report = run_soak(cfg);
  const std::string s = report.summary();
  EXPECT_NE(s.find("violations"), std::string::npos);
  EXPECT_NE(s.find("commits"), std::string::npos);
}

}  // namespace
}  // namespace uparc::txn
