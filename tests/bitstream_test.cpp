// Unit tests for the bitstream substrate: format, header, frames, generator,
// parser, writer.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "bitstream/writer.hpp"
#include "common/units.hpp"

namespace uparc::bits {
namespace {

using namespace uparc::literals;

TEST(Format, PacketHeaderFieldsRoundTrip) {
  u32 h = type1(Opcode::kWrite, ConfigReg::kFdri, 41);
  EXPECT_EQ(packet_type(h), 1u);
  EXPECT_EQ(packet_opcode(h), Opcode::kWrite);
  EXPECT_EQ(packet_reg(h), ConfigReg::kFdri);
  EXPECT_EQ(type1_count(h), 41u);

  u32 h2 = type2(Opcode::kWrite, 123456);
  EXPECT_EQ(packet_type(h2), 2u);
  EXPECT_EQ(type2_count(h2), 123456u);
}

TEST(Format, DeviceLookup) {
  auto v5 = device_by_idcode(kVirtex5Sx50t.idcode);
  ASSERT_TRUE(v5.has_value());
  EXPECT_EQ(v5->name, "XC5VSX50T");
  EXPECT_EQ(v5->frame_words, 41u);
  EXPECT_FALSE(device_by_idcode(0x12345678).has_value());
}

TEST(Format, PaperQuotedSizes) {
  // Paper: full Virtex-5 bitstream 2444 KB; frame = 41 words = 164 B.
  EXPECT_EQ(kVirtex5Sx50t.full_bitstream_kb, 2444u);
  EXPECT_EQ(frame_bytes(kVirtex5Sx50t), 164u);
}

TEST(FrameAddress, PackUnpackRoundTrip) {
  FrameAddress a{2, 1, 17, 200, 99};
  FrameAddress b = FrameAddress::unpack(a.pack());
  EXPECT_EQ(a, b);
}

TEST(FrameAddress, AutoIncrementOrder) {
  FrameAddress a{0, 0, 0, 0, 126};
  a = next_frame_address(a);
  EXPECT_EQ(a.minor, 127u);
  a = next_frame_address(a);
  EXPECT_EQ(a.minor, 0u);
  EXPECT_EQ(a.column, 1u);
}

TEST(FrameAddress, LinearIndexIsInjective) {
  FrameAddress a{0, 0, 0, 5, 10};
  FrameAddress b{0, 0, 0, 5, 11};
  FrameAddress c{0, 0, 0, 6, 10};
  EXPECT_NE(a.linear_index(), b.linear_index());
  EXPECT_NE(a.linear_index(), c.linear_index());
  EXPECT_EQ(b.linear_index(), a.linear_index() + 1);
}

TEST(Frames, SplitRejectsPartialFrames) {
  Words payload(40);  // not a multiple of 41
  EXPECT_THROW((void)split_frames(kVirtex5Sx50t, FrameAddress{}, payload),
               std::invalid_argument);
}

TEST(Header, SerializeParseRoundTrip) {
  BitstreamHeader h;
  h.design_name = "module_fft";
  h.part_name = "XC5VSX50T";
  h.body_bytes = 1234 * 4;
  Bytes file = serialize_header(h);
  file.resize(file.size() + h.body_bytes);  // fake body

  auto parsed = parse_header(file);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header, h);
  EXPECT_EQ(parsed.value().body_offset, serialize_header(h).size());
}

TEST(Header, RejectsCorruptMagic) {
  BitstreamHeader h;
  h.design_name = "x";
  Bytes file = serialize_header(h);
  file[3] ^= 0xFF;
  EXPECT_FALSE(parse_header(file).ok());
}

TEST(Header, RejectsTruncation) {
  BitstreamHeader h;
  h.design_name = "design";
  h.body_bytes = 100;
  Bytes file = serialize_header(h);  // no body appended
  auto r = parse_header(file);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("exceeds file size"), std::string::npos);
}

TEST(Generator, ProducesRequestedSizeInWholeFrames) {
  GeneratorConfig cfg;
  cfg.target_body_bytes = 32_KiB;
  Generator gen(cfg);
  PartialBitstream bs = gen.generate();
  // Payload rounds down to whole frames.
  EXPECT_EQ(bs.fdri_words % kVirtex5Sx50t.frame_words, 0u);
  EXPECT_EQ(bs.frames.size(), bs.fdri_words / kVirtex5Sx50t.frame_words);
  EXPECT_NEAR(static_cast<double>(bs.body_bytes()), 32.0 * 1024, 2048);
}

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.seed = 42;
  PartialBitstream a = Generator(cfg).generate();
  PartialBitstream b = Generator(cfg).generate();
  EXPECT_EQ(a.body, b.body);
  cfg.seed = 43;
  PartialBitstream c = Generator(cfg).generate();
  EXPECT_NE(a.body, c.body);
}

TEST(Generator, UtilizationControlsBlankFrames) {
  GeneratorConfig cfg;
  cfg.target_body_bytes = 64_KiB;
  cfg.utilization = 0.3;
  PartialBitstream low = Generator(cfg).generate();
  cfg.utilization = 1.0;
  PartialBitstream high = Generator(cfg).generate();

  auto blank_frames = [](const PartialBitstream& bs) {
    std::size_t blanks = 0;
    for (const auto& f : bs.frames) {
      bool all_zero = true;
      for (u32 w : f.data) {
        if (w != 0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) ++blanks;
    }
    return blanks;
  };
  // Fully-utilized designs may still produce the odd all-zero frame (a
  // template can be all blank stretches), but far fewer than at 30%.
  EXPECT_GT(blank_frames(low), 2 * blank_frames(high) + 20);
  EXPECT_LT(blank_frames(high), high.frames.size() / 10);
}

TEST(Generator, RejectsBadKnobs) {
  GeneratorConfig cfg;
  cfg.utilization = 1.5;
  EXPECT_THROW(Generator{cfg}, std::invalid_argument);
  cfg.utilization = 0.5;
  cfg.complexity = -0.1;
  EXPECT_THROW(Generator{cfg}, std::invalid_argument);
}

TEST(Parser, DecodesGeneratedBitstream) {
  GeneratorConfig cfg;
  cfg.target_body_bytes = 16_KiB;
  cfg.design_name = "pr_test";
  PartialBitstream bs = Generator(cfg).generate();

  auto parsed = parse_body(kVirtex5Sx50t, bs.body);
  ASSERT_TRUE(parsed.ok());
  const ParsedBody& body = parsed.value();
  EXPECT_TRUE(body.saw_sync);
  EXPECT_TRUE(body.desynced);
  EXPECT_EQ(body.idcode, kVirtex5Sx50t.idcode);
  EXPECT_TRUE(body.crc_checked);
  EXPECT_TRUE(body.crc_ok);
  ASSERT_EQ(body.frames.size(), bs.frames.size());
  for (std::size_t i = 0; i < body.frames.size(); ++i) {
    EXPECT_EQ(body.frames[i].address, bs.frames[i].address);
    EXPECT_EQ(body.frames[i].data, bs.frames[i].data);
  }
}

TEST(Parser, DetectsCorruptedPayloadViaCrc) {
  GeneratorConfig cfg;
  cfg.target_body_bytes = 8_KiB;
  PartialBitstream bs = Generator(cfg).generate();
  bs.body[bs.fdri_offset + 10] ^= 0x1;  // flip a config bit

  auto parsed = parse_body(kVirtex5Sx50t, bs.body);
  ASSERT_TRUE(parsed.ok());  // structurally fine
  EXPECT_TRUE(parsed.value().crc_checked);
  EXPECT_FALSE(parsed.value().crc_ok);
}

TEST(Parser, RejectsMissingSync) {
  Words junk(100, kDummyWord);
  EXPECT_FALSE(parse_body(kVirtex5Sx50t, junk).ok());
}

TEST(Parser, RejectsOverrunningPacket) {
  PacketWriter pw;
  pw.prologue();
  Words body = pw.take();
  body.push_back(type1(Opcode::kWrite, ConfigReg::kCmd, 5));  // payload missing
  EXPECT_FALSE(parse_body(kVirtex5Sx50t, body).ok());
}

TEST(Parser, RejectsOrphanType2AsBadInput) {
  // A type-2 packet is only legal directly after a zero-count type-1 select;
  // with no register selected its payload cannot be attributed.
  PacketWriter pw;
  pw.prologue();
  Words body = pw.take();
  body.push_back(type2(Opcode::kWrite, 4));
  body.insert(body.end(), 4, 0u);
  auto r = parse_body(kVirtex5Sx50t, body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().cause, ErrorCause::kBadInput);
}

TEST(Parser, ClassifiesWordCountOverrunAsBadInput) {
  // Declared payload longer than the remaining file: the count field is
  // corrupt or the image is truncated.
  PacketWriter pw;
  pw.prologue();
  pw.write_reg(ConfigReg::kIdcode, kVirtex5Sx50t.idcode);
  Words body = pw.take();
  body.push_back(type1(Opcode::kWrite, ConfigReg::kFdri, 0));
  body.push_back(type2(Opcode::kWrite, 1u << 20));  // far beyond the body
  body.push_back(0u);
  auto r = parse_body(kVirtex5Sx50t, body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().cause, ErrorCause::kBadInput);
}

TEST(Parser, RejectsNopWithDeclaredPayload) {
  // A NOP carrying a count would make the parser misread its "payload" as
  // packet headers; the hardened parser rejects instead of desyncing.
  PacketWriter pw;
  pw.prologue();
  Words body = pw.take();
  body.push_back(type1(Opcode::kNop, ConfigReg::kCmd, 2));
  body.push_back(0u);
  body.push_back(0u);
  auto r = parse_body(kVirtex5Sx50t, body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().cause, ErrorCause::kBadInput);
}

TEST(Writer, FileRoundTrip) {
  GeneratorConfig cfg;
  cfg.target_body_bytes = 8_KiB;
  cfg.design_name = "roundtrip";
  PartialBitstream bs = Generator(cfg).generate();
  Bytes file = to_file(bs);

  auto parsed = parse_file(kVirtex5Sx50t, file);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header.design_name, "roundtrip");
  EXPECT_EQ(parsed.value().body.frames.size(), bs.frames.size());
  EXPECT_TRUE(parsed.value().body.crc_ok);
}

TEST(PacketWriter, FdriUsesType2ForLargePayloads) {
  PacketWriter pw;
  Words payload(5000, 0xCAFEBABEu);
  pw.write_fdri(payload);
  const Words& w = pw.words();
  EXPECT_EQ(packet_type(w[0]), 1u);
  EXPECT_EQ(type1_count(w[0]), 0u);
  EXPECT_EQ(packet_type(w[1]), 2u);
  EXPECT_EQ(type2_count(w[1]), 5000u);
  EXPECT_EQ(w.size(), 5002u);
}

}  // namespace
}  // namespace uparc::bits
