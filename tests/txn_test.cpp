// Unit tests for the transactional reconfiguration layer: journal, health
// tracking, TxnManager commit/rollback paths, and the health-aware routing
// in RegionManager.
#include <gtest/gtest.h>

#include "analysis/bitstream_lint.hpp"
#include "bitstream/writer.hpp"
#include "core/system.hpp"
#include "fault/injector.hpp"
#include "region/region_manager.hpp"
#include "txn/transaction.hpp"

namespace uparc::txn {
namespace {

using namespace uparc::literals;

bits::PartialBitstream make_bs(std::size_t bytes, u64 seed,
                               bits::FrameAddress start = {0, 0, 1, 10, 0}) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = bytes;
  cfg.seed = seed;
  cfg.start_address = start;
  cfg.utilization = 1.0;
  return bits::Generator(cfg).generate();
}

/// Forward path limited to two attempts so an armed abort plan exhausts it
/// quickly; rollback keeps the default envelope. The quarantine backoff is
/// stretched well past the stale-event horizon (cancelled watchdog/backoff
/// wake-ups still drain and advance sim time) so tests observe the
/// quarantined state rather than racing its expiry.
TxnPolicy tight_forward_policy() {
  TxnPolicy p;
  p.forward.max_attempts = 2;
  p.health.base_backoff = TimePs::from_ms(100);
  return p;
}

/// Abort plan that kills the next `fires` ICAP writes after `after`
/// untouched opportunities (0 = abort immediately).
fault::FaultPlan abort_plan(u64 fires, u64 seed = 9, u64 after = 0) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.arm(fault::FaultSite::kIcapAbort, {.rate = 1.0, .after = after, .max_fires = fires});
  return plan;
}

TEST(JournalTest, RecordsPhasesAndEnforcesTerminality) {
  sim::Simulation sim;
  Journal j(sim);
  const u64 id = j.begin("r0", "fft");
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(j.open_count(), 1u);
  j.advance(id, TxnPhase::kForward);
  j.advance(id, TxnPhase::kVerify);
  j.advance(id, TxnPhase::kCommitted, "verified");
  EXPECT_TRUE(j.all_terminal());
  ASSERT_NE(j.find(id), nullptr);
  EXPECT_TRUE(j.find(id)->terminal());
  EXPECT_EQ(j.find(id)->events.size(), 4u);  // begun + 3 advances

  EXPECT_THROW(j.advance(id, TxnPhase::kForward), std::logic_error);
  EXPECT_THROW(j.advance(99, TxnPhase::kForward), std::logic_error);

  const std::string json = j.render_json();
  EXPECT_NE(json.find("\"committed\""), std::string::npos);
  EXPECT_NE(json.find("\"fft\""), std::string::npos);
  EXPECT_NE(j.render_text().find("r0"), std::string::npos);
}

TEST(HealthTest, QuarantineProbationAndRecovery) {
  sim::Simulation sim;
  HealthTracker ht(sim, "health");
  EXPECT_EQ(ht.state("r0"), HealthState::kHealthy);
  EXPECT_TRUE(ht.schedulable("r0"));

  ht.on_rollback("r0");
  EXPECT_EQ(ht.state("r0"), HealthState::kHealthy);  // one strike
  ht.on_rollback("r0");
  EXPECT_EQ(ht.state("r0"), HealthState::kQuarantined);
  EXPECT_FALSE(ht.schedulable("r0"));
  EXPECT_EQ(ht.quarantine_entries("r0"), 1u);
  const TimePs until = ht.quarantined_until("r0");
  EXPECT_EQ(until, ht.policy().base_backoff);

  // Backoff expiry moves the region to probation: schedulable for a trial.
  sim.schedule_at(until, [] {});
  sim.run();
  EXPECT_EQ(ht.state("r0"), HealthState::kProbation);
  EXPECT_TRUE(ht.schedulable("r0"));

  // A failed trial re-quarantines with a doubled backoff.
  ht.on_rollback("r0");
  EXPECT_EQ(ht.state("r0"), HealthState::kQuarantined);
  EXPECT_EQ(ht.quarantine_entries("r0"), 2u);
  EXPECT_EQ(ht.quarantined_until("r0") - sim.now(),
            TimePs(ht.policy().base_backoff.ps() * 2));

  // A committed trial restores full health (entries kept for backoff memory).
  sim.schedule_at(ht.quarantined_until("r0"), [] {});
  sim.run();
  EXPECT_EQ(ht.state("r0"), HealthState::kProbation);
  ht.on_commit("r0");
  EXPECT_EQ(ht.state("r0"), HealthState::kHealthy);
  EXPECT_EQ(ht.consecutive_rollbacks("r0"), 0u);
  EXPECT_EQ(ht.quarantine_entries("r0"), 2u);
}

TEST(HealthTest, FailureQuarantinesPermanently) {
  sim::Simulation sim;
  HealthTracker ht(sim, "health");
  ht.on_failure("r0");
  EXPECT_EQ(ht.state("r0"), HealthState::kQuarantined);
  sim.schedule_at(TimePs::from_ms(10'000), [] {});
  sim.run();
  EXPECT_EQ(ht.state("r0"), HealthState::kQuarantined);  // never expires
  EXPECT_FALSE(ht.schedulable("r0"));
}

TEST(HealthTest, BackoffIsCapped) {
  sim::Simulation sim;
  HealthPolicy pol;
  pol.base_backoff = TimePs::from_us(500);
  pol.max_backoff = TimePs::from_us(1200);
  HealthTracker ht(sim, "health", pol);
  for (int round = 0; round < 4; ++round) {
    ht.on_rollback("r0");
    ht.on_rollback("r0");
    const TimePs left = ht.quarantined_until("r0") - sim.now();
    EXPECT_LE(left, pol.max_backoff);
    sim.schedule_at(ht.quarantined_until("r0"), [] {});
    sim.run();
  }
  EXPECT_EQ(ht.quarantine_entries("r0"), 4u);
}

TEST(BlankBitstream, IsWellFormedAndProgramsZeroFrames) {
  const bits::FrameAddress origin{0, 0, 2, 7, 0};
  auto blank = TxnManager::make_blank_bitstream(bits::kVirtex5Sx50t, origin, 12);
  ASSERT_EQ(blank.frames.size(), 12u);
  EXPECT_EQ(blank.frames.front().address, origin);

  // Lint-clean as a serialized file.
  auto report = analysis::lint_file(bits::kVirtex5Sx50t, bits::to_file(blank));
  EXPECT_TRUE(report.clean()) << report.render_text();

  // A fresh ICAP consumes it and commits all-zero frames.
  sim::Simulation sim;
  icap::ConfigPlane plane(sim, "plane", bits::kVirtex5Sx50t);
  icap::Icap port(sim, "icap", plane);
  for (u32 w : blank.body) port.write_word(w);
  EXPECT_TRUE(port.done());
  EXPECT_TRUE(port.crc_ok());
  EXPECT_EQ(port.frames_committed(), 12u);
  const Words* frame = plane.read_frame(origin);
  ASSERT_NE(frame, nullptr);
  for (u32 w : *frame) EXPECT_EQ(w, 0u);
}

class TxnFixture : public ::testing::Test {
 protected:
  TxnOutcome run(const std::string& region, const std::string& module,
                 const bits::PartialBitstream& image, TxnPolicy policy = {}) {
    return sys.run_transaction_blocking(region, module, image, policy);
  }

  core::System sys;
};

TEST_F(TxnFixture, CleanTransactionCommits) {
  auto image = make_bs(16_KiB, 3);
  auto out = run("r0", "fft", image);
  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.terminal, TxnPhase::kCommitted);
  EXPECT_EQ(out.rollback_rounds, 0u);
  EXPECT_GE(out.verify_runs, 1u);
  EXPECT_GT(out.end.ps(), out.start.ps());

  TxnManager* txn = sys.transactions();
  ASSERT_NE(txn, nullptr);
  EXPECT_TRUE(txn->journal().all_terminal());
  ASSERT_NE(txn->last_good("r0"), nullptr);
  EXPECT_TRUE(sys.plane().contains(image.frames));
  EXPECT_TRUE(txn->region_consistent("r0", sys.plane()));
  EXPECT_EQ(txn->health().state("r0"), HealthState::kHealthy);
}

TEST_F(TxnFixture, MidBurstAbortRollsBackToLastGood) {
  auto good = make_bs(16_KiB, 3);
  ASSERT_TRUE(run("r0", "fft", good).committed);

  // Abort mid-FDRI-burst, after some of the new module's frames have
  // already hit the plane (a genuinely torn write), for both forward
  // attempts; the rollback rounds then run with the fault exhausted.
  fault::FaultInjector inj(sys.sim(), "inj", abort_plan(2, 9, 500));
  inj.arm(sys.uparc(), sys.icap());

  auto out = run("r0", "fir", make_bs(16_KiB, 4), tight_forward_policy());
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(out.terminal, TxnPhase::kRolledBackLastGood);
  EXPECT_GE(out.rollback_rounds, 1u);
  EXPECT_FALSE(out.error.empty());

  // The region still serves the prior module — verified, not assumed.
  TxnManager* txn = sys.transactions();
  EXPECT_TRUE(sys.plane().contains(good.frames));
  EXPECT_TRUE(txn->region_consistent("r0", sys.plane()));
  ASSERT_NE(txn->last_good("r0"), nullptr);
  EXPECT_TRUE(txn->journal().all_terminal());
  EXPECT_EQ(txn->health().consecutive_rollbacks("r0"), 1u);
}

TEST_F(TxnFixture, NoPriorModuleRollsBackToBlank) {
  fault::FaultInjector inj(sys.sim(), "inj", abort_plan(2));
  inj.arm(sys.uparc(), sys.icap());

  auto image = make_bs(16_KiB, 5);
  auto out = run("r0", "fft", image, tight_forward_policy());
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(out.terminal, TxnPhase::kRolledBackBlank);

  // The whole window is verified blank: no half-programmed residue.
  TxnManager* txn = sys.transactions();
  EXPECT_EQ(txn->last_good("r0"), nullptr);
  EXPECT_TRUE(txn->region_consistent("r0", sys.plane()));
  for (const auto& f : image.frames) {
    const Words* w = sys.plane().read_frame(f.address);
    if (w == nullptr) continue;
    for (u32 word : *w) EXPECT_EQ(word, 0u);
  }
}

TEST_F(TxnFixture, RepeatedRollbacksQuarantineTheRegion) {
  auto image = make_bs(16_KiB, 6);
  for (int i = 0; i < 2; ++i) {
    fault::FaultInjector inj(sys.sim(), "inj", abort_plan(2, 20 + static_cast<u64>(i)));
    inj.arm(sys.uparc(), sys.icap());
    auto out = run("r0", "fft", image, tight_forward_policy());
    EXPECT_EQ(out.terminal, TxnPhase::kRolledBackBlank);
  }
  TxnManager* txn = sys.transactions();
  EXPECT_EQ(txn->health().state("r0"), HealthState::kQuarantined);
  EXPECT_FALSE(txn->health().schedulable("r0"));
}

TEST_F(TxnFixture, ThrowsWhileBusyAndOnEmptyImage) {
  auto image = make_bs(8_KiB, 7);
  TxnManager* txn = nullptr;
  (void)run("r0", "fft", image);  // creates the manager
  txn = sys.transactions();
  ASSERT_NE(txn, nullptr);
  EXPECT_THROW(txn->execute("r0", "x", bits::PartialBitstream{}, [](const TxnOutcome&) {}),
               std::invalid_argument);
  txn->execute("r0", "fir", image, [](const TxnOutcome&) {});
  EXPECT_TRUE(txn->busy());
  EXPECT_THROW(txn->execute("r1", "fir", image, [](const TxnOutcome&) {}),
               std::logic_error);
  sys.sim().run();
  EXPECT_FALSE(txn->busy());
}

class RoutedRegionFixture : public ::testing::Test {
 protected:
  RoutedRegionFixture() {
    region::Floorplan fp(bits::kVirtex5Sx50t);
    EXPECT_TRUE(fp.add_region("slot_a", {bits::FrameAddress{0, 0, 1, 10, 0}, 512}).ok());
    EXPECT_TRUE(fp.add_region("slot_b", {bits::FrameAddress{0, 0, 2, 10, 0}, 512}).ok());
    EXPECT_TRUE(lib.add_module("fft", make_bs(16_KiB, 5)).ok());
    EXPECT_TRUE(lib.add_module("fir", make_bs(16_KiB, 6)).ok());
    txn = std::make_unique<TxnManager>(sys.sim(), "txn", sys.uparc(), sys.icap(),
                                       sys.rail(), tight_forward_policy());
    mgr = std::make_unique<region::RegionManager>(sys.sim(), "region_mgr", std::move(fp),
                                                  lib, sys.uparc(), sys.plane());
    mgr->set_transaction_manager(txn.get());
  }

  region::LoadResult load_blocking(const std::string& module, const std::string& region) {
    std::optional<region::LoadResult> got;
    mgr->load(module, region, [&](const region::LoadResult& r) { got = r; });
    sys.sim().run();
    EXPECT_TRUE(got.has_value());
    return *got;
  }

  region::LoadResult load_any_blocking(const std::string& module) {
    std::optional<region::LoadResult> got;
    mgr->load_any(module, [&](const region::LoadResult& r) { got = r; });
    sys.sim().run();
    EXPECT_TRUE(got.has_value());
    return *got;
  }

  /// Quarantines `region_name` by forcing two rolled-back transactions.
  void quarantine(const std::string& region_name) {
    txn->policy() = tight_forward_policy();
    for (int i = 0; i < 2; ++i) {
      fault::FaultInjector inj(sys.sim(), "inj", abort_plan(2, 40 + static_cast<u64>(i)));
      inj.arm(sys.uparc(), sys.icap());
      auto r = load_blocking("fft", region_name);
      EXPECT_FALSE(r.success);
      EXPECT_TRUE(r.rolled_back);
    }
    // The taps installed by arm() hold a pointer to the injector, so the
    // disarming (empty-plan) injector must outlive every later load.
    disarm_ = std::make_unique<fault::FaultInjector>(sys.sim(), "disarm",
                                                     fault::FaultPlan{});
    disarm_->arm(sys.uparc(), sys.icap());
    txn->policy() = TxnPolicy{};
    ASSERT_EQ(txn->health().state(region_name), HealthState::kQuarantined);
  }

  core::System sys;
  region::ModuleLibrary lib;
  std::unique_ptr<TxnManager> txn;
  std::unique_ptr<region::RegionManager> mgr;
  std::unique_ptr<fault::FaultInjector> disarm_;
};

TEST_F(RoutedRegionFixture, TransactionalLoadCommitsAndRecordsOccupancy) {
  auto r = load_blocking("fft", "slot_a");
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(r.transactional);
  EXPECT_EQ(r.terminal, TxnPhase::kCommitted);
  EXPECT_EQ(mgr->occupant("slot_a"), "fft");
  EXPECT_TRUE(txn->journal().all_terminal());
}

TEST_F(RoutedRegionFixture, RollbackRestoresPreviousOccupant) {
  ASSERT_TRUE(load_blocking("fft", "slot_a").success);
  txn->policy() = tight_forward_policy();
  fault::FaultInjector inj(sys.sim(), "inj", abort_plan(2));
  inj.arm(sys.uparc(), sys.icap());
  auto r = load_blocking("fir", "slot_a");
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.rolled_back);
  EXPECT_EQ(r.terminal, TxnPhase::kRolledBackLastGood);
  EXPECT_EQ(mgr->occupant("slot_a"), "fft");  // old module still serves
}

TEST_F(RoutedRegionFixture, QuarantinedRegionRefusesExplicitPlacement) {
  quarantine("slot_a");
  auto r = load_blocking("fir", "slot_a");
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("quarantined"), std::string::npos);
  EXPECT_FALSE(r.placement_schedulable);
}

TEST_F(RoutedRegionFixture, RoutedLoadAvoidsQuarantinedRegion) {
  quarantine("slot_a");
  auto r = load_any_blocking("fir");
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.region, "slot_b");
  EXPECT_EQ(mgr->occupant("slot_b"), "fir");
}

TEST_F(RoutedRegionFixture, AllQuarantinedDegradesToSoftwareFallback) {
  quarantine("slot_a");
  quarantine("slot_b");
  auto r = load_any_blocking("fir");
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.software_fallback);
  EXPECT_EQ(mgr->software_fallbacks(), 1u);
}

TEST_F(RoutedRegionFixture, ProbationTrialRestoresHealth) {
  quarantine("slot_a");
  // Let the quarantine backoff expire, then place successfully.
  sys.sim().schedule_at(txn->health().quarantined_until("slot_a"), [] {});
  sys.sim().run();
  ASSERT_EQ(txn->health().state("slot_a"), HealthState::kProbation);
  auto r = load_blocking("fir", "slot_a");
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(txn->health().state("slot_a"), HealthState::kHealthy);
}

// Regression: the exponential backoff used to multiply a double without a
// cap, so enough consecutive quarantine entries pushed the value past u64
// range and the TimePs cast was UB — a region could come back with a
// garbage (possibly zero) backoff. The computation now saturates at
// max_backoff no matter how many entries accumulated.
TEST(HealthTrackerTest, BackoffSaturatesAfterManyQuarantineEntries) {
  sim::Simulation sim;
  HealthPolicy policy;
  policy.rollbacks_to_quarantine = 2;
  HealthTracker health(sim, "txn.health", policy);

  for (int cycle = 0; cycle < 200; ++cycle) {
    // Drive into quarantine (or fail the probation trial on later cycles).
    health.on_rollback("r0");
    if (health.state("r0") != HealthState::kQuarantined) health.on_rollback("r0");
    ASSERT_EQ(health.state("r0"), HealthState::kQuarantined);

    const TimePs until = health.quarantined_until("r0");
    ASSERT_GE(until, sim.now());
    // The granted backoff never exceeds the cap — even at entry 200, far
    // past where the unbounded multiply overflowed 64-bit picoseconds.
    EXPECT_LE(until - sim.now(), policy.max_backoff)
        << "entry " << health.quarantine_entries("r0");
    EXPECT_GT(until, sim.now()) << "backoff collapsed to zero at entry "
                                << health.quarantine_entries("r0");

    // Expire the quarantine so the next rollback is a failed probation
    // trial (which re-enters quarantine with a doubled entry count).
    sim.schedule_at(until, [] {});
    sim.run();
    ASSERT_EQ(health.state("r0"), HealthState::kProbation);
  }
  EXPECT_GE(health.quarantine_entries("r0"), 200u);
}

// Regression: remaining-quarantine time is now part of the tracker's
// JSON/metrics surface (it was only derivable from quarantined_until).
TEST(HealthTrackerTest, RemainingQuarantineExposedInJson) {
  sim::Simulation sim;
  HealthTracker health(sim, "txn.health", {});

  EXPECT_EQ(health.remaining_quarantine("r0"), TimePs{});
  health.on_rollback("r0");
  health.on_rollback("r0");
  ASSERT_EQ(health.state("r0"), HealthState::kQuarantined);

  const TimePs remaining = health.remaining_quarantine("r0");
  EXPECT_GT(remaining, TimePs{});
  EXPECT_EQ(remaining, health.quarantined_until("r0") - sim.now());

  const std::string json = health.render_json();
  EXPECT_NE(json.find("\"remaining_quarantine_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"quarantined\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"consecutive_rollbacks\":2"), std::string::npos) << json;

  // Half the backoff later, remaining has shrunk accordingly.
  sim.schedule_at(sim.now() + TimePs(remaining.ps() / 2), [] {});
  sim.run();
  const TimePs later = health.remaining_quarantine("r0");
  EXPECT_LT(later, remaining);
  EXPECT_GT(later, TimePs{});

  // Permanent quarantine reports the -1 sentinel and never expires.
  health.on_failure("r1");
  EXPECT_TRUE(health.permanently_failed("r1"));
  EXPECT_EQ(health.remaining_quarantine("r1"), TimePs(~u64{0}));
  EXPECT_NE(health.render_json().find("\"remaining_quarantine_us\":-1"),
            std::string::npos);
  EXPECT_FALSE(health.permanently_failed("r0"));
}

TEST(HealthTrackerTest, RestoredTrackerContinuesBackoffSchedule) {
  HealthPolicy pol;
  pol.rollbacks_to_quarantine = 1;
  pol.base_backoff = TimePs::from_us(100);
  pol.backoff_factor = 2.0;
  pol.max_backoff = TimePs::from_ms(50);

  sim::Simulation sim_a;
  HealthTracker a(sim_a, "h", pol);
  a.on_rollback("r0");  // quarantine entry 1: 100 us
  sim_a.schedule_at(TimePs::from_us(150), [] {});
  sim_a.run();
  a.on_rollback("r0");  // probation trial rolled back -> entry 2: 200 us
  EXPECT_EQ(a.quarantine_entries("r0"), 2u);
  a.on_failure("r1");  // permanent quarantine must survive the restore too
  const std::string snapshot = a.to_json();

  sim::Simulation sim_b;
  HealthTracker b(sim_b, "h", pol);
  b.restore_json(snapshot);
  EXPECT_EQ(b.quarantine_entries("r0"), 2u);
  EXPECT_EQ(b.consecutive_rollbacks("r0"), a.consecutive_rollbacks("r0"));
  EXPECT_EQ(b.state("r0"), HealthState::kQuarantined);
  // The deadline re-anchors on the new controller's clock but owes the
  // same remaining time.
  EXPECT_EQ(b.remaining_quarantine("r0"), a.remaining_quarantine("r0"));
  EXPECT_TRUE(b.permanently_failed("r1"));

  // Regression: the restored tracker continues the doubling schedule — the
  // next quarantine entry backs off 400 us, not the base 100 us a reset
  // tracker would give.
  sim_b.schedule_at(sim_b.now() + b.remaining_quarantine("r0") + TimePs{1}, [] {});
  sim_b.run();
  EXPECT_EQ(b.state("r0"), HealthState::kProbation);
  b.on_rollback("r0");
  EXPECT_EQ(b.quarantine_entries("r0"), 3u);
  EXPECT_EQ(b.remaining_quarantine("r0"), TimePs::from_us(400));

  EXPECT_THROW(b.restore_json("{\"nope\":1}"), std::runtime_error);
}

TEST(JournalJsonTest, RoundTripIsLosslessForAllStates) {
  sim::Simulation sim;
  Journal j(sim);

  const u64 committed = j.begin("r0", "fft");
  j.advance(committed, TxnPhase::kForward);
  j.advance(committed, TxnPhase::kVerify);
  j.advance(committed, TxnPhase::kCommitted, "verified");

  // Rollback-ladder escalation: last-good readback failed, ladder dropped
  // to blank — the event trail (with notes) must survive the round trip.
  const u64 blanked = j.begin("r1", "fir");
  j.advance(blanked, TxnPhase::kForward, "attempt 1");
  j.advance(blanked, TxnPhase::kRollback, "icap abort");
  j.advance(blanked, TxnPhase::kRollback, "last-good verify failed");
  j.advance(blanked, TxnPhase::kRolledBackBlank, "safe blank");

  const u64 lastgood = j.begin("r2", "fft");
  j.advance(lastgood, TxnPhase::kForward);
  j.advance(lastgood, TxnPhase::kRollback);
  j.advance(lastgood, TxnPhase::kRolledBackLastGood);

  const u64 failed = j.begin("r3", "iir");
  j.advance(failed, TxnPhase::kForward);
  j.advance(failed, TxnPhase::kRollback);
  j.advance(failed, TxnPhase::kFailed, "rollback budget exhausted");

  const u64 open = j.begin("r4", "fft");
  j.advance(open, TxnPhase::kForward);  // still in flight — non-terminal

  const ParsedJournal parsed = parse_journal_json(j.render_json());
  ASSERT_EQ(parsed.records.size(), j.records().size());
  EXPECT_EQ(parsed.open, j.open_count());
  EXPECT_EQ(parsed.open, 1u);
  for (std::size_t i = 0; i < parsed.records.size(); ++i) {
    const TxnRecord& want = j.records()[i];
    const TxnRecord& got = parsed.records[i];
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.region, want.region);
    EXPECT_EQ(got.module, want.module);
    EXPECT_EQ(got.phase, want.phase);
    EXPECT_EQ(got.opened_at, want.opened_at);
    EXPECT_EQ(got.closed_at, want.closed_at);
    EXPECT_EQ(got.terminal(), want.terminal());
    ASSERT_EQ(got.events.size(), want.events.size());
    for (std::size_t e = 0; e < want.events.size(); ++e) {
      EXPECT_EQ(got.events[e].phase, want.events[e].phase);
      EXPECT_EQ(got.events[e].at, want.events[e].at);
      EXPECT_EQ(got.events[e].note, want.events[e].note);
    }
  }

  EXPECT_THROW(parse_journal_json("not json"), std::runtime_error);
  EXPECT_THROW(parse_journal_json("[{\"id\":1,\"phase\":\"warp\"}]"), std::runtime_error);
}

}  // namespace
}  // namespace uparc::txn
