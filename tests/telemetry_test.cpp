// Telemetry layer: HistogramSnapshot merge/delta edge cases (the fleet
// percentile must never invent finite values from bucket bounds), ring
// wrap-around, sampler tick alignment, fleet aggregation semantics and
// export determinism.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace uparc::obs {
namespace {

HistogramSnapshot snap_of(const std::vector<double>& bounds,
                          const std::vector<double>& samples) {
  Histogram h(bounds);
  for (double s : samples) h.observe(s);
  return HistogramSnapshot::of(h);
}

// ----------------------------------------------------- snapshot merge/delta

TEST(HistogramSnapshot, MergeWithEmptyIsIdentity) {
  const auto a = snap_of({10.0, 100.0}, {5.0, 42.0, 99.0});
  const auto empty = snap_of({10.0, 100.0}, {});
  const auto m1 = HistogramSnapshot::merge(a, empty);
  const auto m2 = HistogramSnapshot::merge(empty, a);
  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  for (const HistogramSnapshot& m : {*m1, *m2}) {
    EXPECT_EQ(m.count, a.count);
    EXPECT_DOUBLE_EQ(m.percentile(50.0), a.percentile(50.0));
    EXPECT_DOUBLE_EQ(m.percentile(99.0), a.percentile(99.0));
    EXPECT_DOUBLE_EQ(m.min, a.min);
    EXPECT_DOUBLE_EQ(m.max, a.max);
  }
}

TEST(HistogramSnapshot, MergeOfTwoEmptiesStaysEmpty) {
  const auto empty = snap_of({10.0, 100.0}, {});
  const auto m = HistogramSnapshot::merge(empty, empty);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->count, 0u);
  EXPECT_DOUBLE_EQ(m->percentile(99.0), 0.0);
}

TEST(HistogramSnapshot, MergeWithSaturatedOverflowKeepsObservedMax) {
  // One device's histogram lives entirely in the overflow bucket. The
  // merged fleet percentile must report the *observed* maximum, not a
  // value interpolated from the finite bucket bounds (there is no mass
  // there) and not infinity.
  const auto saturated = snap_of({10.0, 100.0}, {5000.0, 7000.0, 9000.0});
  const auto empty = snap_of({10.0, 100.0}, {});
  const auto m = HistogramSnapshot::merge(empty, saturated);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->count, 3u);
  const double p99 = m->percentile(99.0);
  EXPECT_LE(p99, 9000.0) << "percentile escaped the observed range";
  EXPECT_GT(p99, 100.0) << "percentile collapsed into the finite buckets";
  EXPECT_DOUBLE_EQ(m->percentile(100.0), 9000.0);
}

TEST(HistogramSnapshot, MergeMixedMassClampsToJointObservedRange) {
  const auto fast = snap_of({10.0, 100.0}, {1.0, 2.0, 3.0});
  const auto slow = snap_of({10.0, 100.0}, {50000.0});
  const auto m = HistogramSnapshot::merge(fast, slow);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->min, 1.0);
  EXPECT_DOUBLE_EQ(m->max, 50000.0);
  EXPECT_GE(m->percentile(50.0), 1.0);
  EXPECT_LE(m->percentile(99.0), 50000.0);
}

TEST(HistogramSnapshot, MergeRejectsMismatchedLayouts) {
  const auto a = snap_of({10.0, 100.0}, {5.0});
  const auto b = snap_of({10.0, 100.0, 1000.0}, {5.0});
  EXPECT_FALSE(HistogramSnapshot::merge(a, b).has_value());
}

TEST(HistogramSnapshot, DeltaIsolatesTheWindow) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(5.0);
  h.observe(50.0);
  const auto older = HistogramSnapshot::of(h);
  h.observe(500.0);
  h.observe(600.0);
  const auto newer = HistogramSnapshot::of(h);
  const auto d = HistogramSnapshot::delta(newer, older);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->count, 2u);
  EXPECT_DOUBLE_EQ(d->sum, 1100.0);
  // All window mass sits in (100, 1000]; count_above(100) sees both.
  EXPECT_DOUBLE_EQ(d->count_above(100.0), 2.0);
  EXPECT_DOUBLE_EQ(d->count_above(1000.0), 0.0);
}

TEST(HistogramSnapshot, DeltaAgainstEmptyBaselineIsTheCumulative) {
  const auto newer = snap_of({10.0}, {3.0, 20.0});
  const HistogramSnapshot empty;
  const auto d = HistogramSnapshot::delta(newer, empty);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->count, 2u);
}

TEST(HistogramSnapshot, DeltaRejectsCountRegression) {
  const auto two = snap_of({10.0}, {1.0, 2.0});
  const auto three = snap_of({10.0}, {1.0, 2.0, 3.0});
  EXPECT_FALSE(HistogramSnapshot::delta(two, three).has_value());
}

// ------------------------------------------------------------------- ring

TEST(TelemetryRing, WrapKeepsNewestInOldestFirstOrder) {
  TelemetryRing<int> ring(3);
  for (int i = 1; i <= 5; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_pushed(), 5u);
  EXPECT_EQ(ring.at(0), 3);
  EXPECT_EQ(ring.at(1), 4);
  EXPECT_EQ(ring.at(2), 5);
  EXPECT_EQ(ring.back(), 5);
}

// ---------------------------------------------------------------- sampler

TEST(TelemetrySampler, TicksLandOnExactIntervalMultiples) {
  Registry reg;
  reg.counter("c").add(1.0);
  TelemetryConfig cfg;
  cfg.interval = TimePs::from_us(100);
  TelemetrySampler sampler(cfg);
  sampler.add_source(&reg, {});
  // Events land at awkward times; ticks must still be 100us multiples.
  sampler.sample_until(TimePs::from_us(137));
  sampler.sample_until(TimePs::from_us(412));
  EXPECT_EQ(sampler.ticks(), 4u);  // 100, 200, 300, 400
  const SeriesRing* s = sampler.find("c");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s->at(i).t.us(), 100.0 * static_cast<double>(i + 1));
  }
}

TEST(TelemetrySampler, FleetAggregationMergesAcrossTheDeviceLabel) {
  Registry d0, d1;
  d0.counter("serve.done").add(3.0);
  d1.counter("serve.done").add(4.0);
  d0.gauge("depth").set(2.0);
  d1.gauge("depth").set(7.0);
  auto& h0 = d0.histogram("lat", {10.0, 100.0});
  auto& h1 = d1.histogram("lat", {10.0, 100.0});
  h0.observe(5.0);
  h1.observe(5000.0);  // overflow-only on d1

  TelemetrySampler sampler;
  sampler.add_source(&d0, {{"device", "d0"}});
  sampler.add_source(&d1, {{"device", "d1"}});
  sampler.sample(TimePs::from_us(250));

  const SeriesRing* fleet_done = sampler.find("serve.done{device=\"fleet\"}");
  ASSERT_NE(fleet_done, nullptr);
  EXPECT_DOUBLE_EQ(fleet_done->back().value, 7.0);  // counters sum

  const SeriesRing* fleet_depth = sampler.find("depth{device=\"fleet\"}");
  ASSERT_NE(fleet_depth, nullptr);
  EXPECT_DOUBLE_EQ(fleet_depth->back().value, 7.0);  // gauges take the max

  // Fleet histogram percentile is the weighted merge: half the mass at 5,
  // half in overflow; p99 must sit at the observed max of the slow device.
  const HistogramRing* fleet_lat = sampler.find_histogram("lat{device=\"fleet\"}");
  ASSERT_NE(fleet_lat, nullptr);
  EXPECT_EQ(fleet_lat->back().snap.count, 2u);
  EXPECT_DOUBLE_EQ(fleet_lat->back().snap.percentile(100.0), 5000.0);
}

TEST(TelemetrySampler, ExportsAreDeterministicAcrossIdenticalRuns) {
  auto run = [] {
    Registry reg;
    TelemetryConfig cfg;
    cfg.interval = TimePs::from_us(50);
    TelemetrySampler sampler(cfg);
    sampler.add_source(&reg, {{"device", "d0"}});
    for (int i = 1; i <= 20; ++i) {
      reg.counter("c").add(static_cast<double>(i));
      reg.histogram("lat", Histogram::latency_bounds_us()).observe(10.0 * i);
      sampler.sample_until(TimePs::from_us(50.0 * i));
    }
    return sampler.render_json() + "\n---\n" + sampler.render_csv();
  };
  EXPECT_EQ(run(), run());
}

TEST(TelemetrySampler, CsvQuotesAdversarialSeriesNames) {
  Registry reg;
  reg.counter(labeled_name("c", {{"k", "a,b\"c"}})).add(1.0);
  TelemetrySampler sampler;
  sampler.add_source(&reg, {});
  sampler.sample(TimePs::from_us(250));
  const std::string csv = sampler.render_csv();
  // RFC-4180: the embedded quote doubles and the field is quoted, so the
  // row still has exactly 2 unquoted commas (3 columns).
  const std::size_t row_start = csv.find('\n') + 1;
  const std::string row = csv.substr(row_start, csv.find('\n', row_start) - row_start);
  int commas = 0;
  bool quoted = false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == '"') {
      quoted = !quoted;
    } else if (row[i] == ',' && !quoted) {
      ++commas;
    }
  }
  EXPECT_EQ(commas, 2) << "row: " << row;
  EXPECT_FALSE(quoted) << "unterminated quoted field";
}

}  // namespace
}  // namespace uparc::obs
