// Crash-consistency tests: deterministic crash-point injection, cold-start
// recovery from a WAL (committed work is reprogrammed onto a blank fabric,
// nothing is invented from an empty log), the flight-recorder freeze at the
// moment of death, and a bounded crash-restart sweep with the replay
// determinism gate on top.
#include <gtest/gtest.h>

#include <optional>

#include "analysis/replay.hpp"
#include "bitstream/generator.hpp"
#include "core/system.hpp"
#include "fault/crash.hpp"
#include "region/module_library.hpp"
#include "txn/crash_soak.hpp"
#include "txn/recovery.hpp"
#include "txn/transaction.hpp"

namespace uparc::txn {
namespace {

TEST(CrashInjectorTest, PickIsDeterministicAndInRange) {
  const fault::CrashPoint a = fault::CrashInjector::pick(42, 100);
  const fault::CrashPoint b = fault::CrashInjector::pick(42, 100);
  EXPECT_EQ(a.wal_seq, b.wal_seq);
  EXPECT_EQ(a.corruption, b.corruption);
  EXPECT_GE(a.wal_seq, 1u);
  EXPECT_LE(a.wal_seq, 100u);
  bool varies = false;
  for (u64 seed = 1; seed < 16 && !varies; ++seed) {
    const fault::CrashPoint c = fault::CrashInjector::pick(seed, 100);
    varies = c.wal_seq != a.wal_seq || c.corruption != a.corruption;
  }
  EXPECT_TRUE(varies);
}

TEST(CrashInjectorTest, KillsAtTheArmedBoundaryAndFreezesFlight) {
  sim::Simulation sim;
  MemWalStorage store;
  Wal wal(sim, "wal", store);
  obs::FlightRecorder flight;
  fault::CrashInjector injector({.wal_seq = 2, .corruption = WalCorruption::kTornWrite});
  injector.set_flight_recorder(&flight, "ctl");
  injector.arm(wal);

  EXPECT_EQ(wal.append(WalRecordType::kHealth, "{}"), 1u);
  EXPECT_FALSE(injector.crashed());
  try {
    wal.append(WalRecordType::kTxnBegin, "{\"txn\":1,\"region\":\"r0\"}");
    FAIL() << "crash point did not fire";
  } catch (const fault::ControllerCrash& c) {
    EXPECT_EQ(c.wal_seq, 2u);
    EXPECT_EQ(c.corruption, WalCorruption::kTornWrite);
    EXPECT_EQ(c.at, sim.now());
  }
  EXPECT_TRUE(injector.crashed());
  EXPECT_EQ(injector.crash_time(), sim.now());

  // The black box froze at the moment of death, before the throw.
  EXPECT_TRUE(flight.triggered());
  EXPECT_EQ(flight.first_trigger_reason(), "controller-crash");
  EXPECT_EQ(flight.first_trigger_time(), sim.now());
  EXPECT_FALSE(flight.postmortem().empty());

  // The corruption landed: the tail record is torn in storage.
  EXPECT_EQ(scan_wal(store.read_all()).tail, WalTailState::kTorn);
}

TEST(RecoveryTest, EmptyWalRecoversToCleanStateAndSealsNewEpoch) {
  core::SystemConfig sys_cfg;
  sys_cfg.with_cache = true;
  core::System sys(sys_cfg);
  TxnManager txn(sys.sim(), "txn", sys.uparc(), sys.icap(), sys.rail());
  MemWalStorage store;
  Wal new_wal(sys.sim(), "wal", store);

  RecoveryCoordinator coordinator(sys, txn);
  const auto resolver = [](const std::string& module,
                           const std::string&) -> Result<bits::PartialBitstream> {
    return make_error("no image for " + module, ErrorCause::kBadInput);
  };
  const Bytes empty;
  const RecoveryReport report = coordinator.recover(empty, resolver, &new_wal);

  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.records_scanned, 0u);
  EXPECT_EQ(report.tail, WalTailState::kClean);
  EXPECT_TRUE(report.regions.empty());
  EXPECT_EQ(report.find("r0"), nullptr);
  EXPECT_FALSE(report.render_json().empty());
  // A brand-new epoch starts with a compacting checkpoint, and the manager
  // journals into the new log from here on.
  EXPECT_EQ(txn.wal(), &new_wal);
  EXPECT_GE(new_wal.checkpoints(), 1u);
  EXPECT_EQ(scan_wal(store.read_all()).records.front().type, WalRecordType::kCheckpoint);
}

TEST(RecoveryTest, ReprogramsCommittedRegionOntoBlankFabric) {
  // Controller A commits m0 into r0 with a WAL attached; then the
  // controller dies AND the fabric loses its frames (worst case: power
  // cycle). Recovery on a blank plane must classify r0 as committed,
  // notice the readback mismatch and reprogram the journaled last-good.
  CrashSoakConfig cfg;
  cfg.modules = 1;
  cfg.regions = 1;
  cfg.module_kb = 2;

  bits::GeneratorConfig gen_cfg;
  gen_cfg.target_body_bytes = 2048;
  gen_cfg.seed = 77;
  gen_cfg.design_name = "m0";

  core::SystemConfig sys_cfg;
  sys_cfg.with_cache = true;

  region::ModuleLibrary library;
  Bytes wal_bytes;
  std::size_t frame_count = 0;
  {
    core::System a(sys_cfg);
    gen_cfg.device = a.uparc().config().device;
    const bits::PartialBitstream image = bits::Generator(gen_cfg).generate();
    frame_count = image.frames.size();
    ASSERT_TRUE(library.add_module("m0", image).ok());

    region::Floorplan plan_a(gen_cfg.device);
    region::RegionGeometry geom;
    geom.origin = bits::FrameAddress{0, 0, 0, 1, 0};
    geom.frame_count = static_cast<u32>(frame_count);
    ASSERT_TRUE(plan_a.add_region("r0", geom).ok());

    MemWalStorage store_a;
    Wal wal_a(a.sim(), "wal", store_a);
    TxnManager txn_a(a.sim(), "txn", a.uparc(), a.icap(), a.rail());
    txn_a.set_wal(&wal_a);

    auto placed = library.instantiate("m0", plan_a, *plan_a.find("r0"));
    ASSERT_TRUE(placed.ok()) << placed.error().message;
    std::optional<TxnOutcome> got;
    txn_a.execute("r0", "m0", placed.value(), [&](const TxnOutcome& o) { got = o; });
    a.sim().run();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->terminal, TxnPhase::kCommitted) << got->error;
    wal_bytes = store_a.read_all();
  }

  core::System b(sys_cfg);  // blank fabric: nothing transplanted
  region::Floorplan plan_b(gen_cfg.device);
  region::RegionGeometry geom;
  geom.origin = bits::FrameAddress{0, 0, 0, 1, 0};
  geom.frame_count = static_cast<u32>(frame_count);
  ASSERT_TRUE(plan_b.add_region("r0", geom).ok());
  TxnManager txn_b(b.sim(), "txn", b.uparc(), b.icap(), b.rail());
  MemWalStorage store_b;
  Wal wal_b(b.sim(), "wal", store_b);

  RecoveryCoordinator coordinator(b, txn_b);
  const RecoveryReport report = coordinator.recover(
      wal_bytes, RecoveryCoordinator::library_resolver(library, plan_b), &wal_b);

  EXPECT_TRUE(report.ok()) << report.summary();
  const RegionRecovery* r0 = report.find("r0");
  ASSERT_NE(r0, nullptr);
  EXPECT_EQ(r0->klass, RegionClass::kCommitted);
  EXPECT_EQ(r0->module, "m0");
  EXPECT_FALSE(r0->readback_clean);  // the fabric was blank
  EXPECT_EQ(r0->action, RecoveryAction::kReprogram);
  // The recovered controller knows m0 as r0's last-good again.
  EXPECT_EQ(txn_b.last_good_module("r0"), "m0");
}

TEST(CrashSoakTest, BoundedSweepHoldsCrashConsistencyInvariants) {
  CrashSoakConfig cfg;
  cfg.ops = 4;
  cfg.regions = 2;
  cfg.modules = 2;
  cfg.module_kb = 2;
  cfg.max_crash_points = 5;
  cfg.sweep_corruptions = true;
  const CrashSoakReport report = run_crash_soak(cfg);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.reference_records, 0u);
  EXPECT_EQ(report.runs, report.crashes);  // every armed point fired
  EXPECT_GT(report.runs, 0u);
  EXPECT_FALSE(report.reference_wal_json.empty());
  EXPECT_FALSE(report.last_recovery_json.empty());
  EXPECT_FALSE(report.sweep_log.empty());
}

TEST(CrashSoakTest, ReplayIsByteIdentical) {
  CrashSoakConfig cfg;
  cfg.ops = 3;
  cfg.regions = 2;
  cfg.modules = 2;
  cfg.module_kb = 2;
  cfg.max_crash_points = 3;
  cfg.sweep_corruptions = false;
  const analysis::ReplayResult result = analysis::verify_crash_replay(cfg);
  EXPECT_TRUE(result.identical()) << result.summary();
  EXPECT_EQ(result.scenario, "crash");
}

}  // namespace
}  // namespace uparc::txn
