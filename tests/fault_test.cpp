// Fault injection and recovery: every failure mode of the reconfiguration
// path must surface as a classified error, recover under the bounded-retry
// policy where possible, and replay bit-identically from the same FaultPlan
// seed.
#include <gtest/gtest.h>

#include "compress/registry.hpp"
#include "controllers/mst_icap.hpp"
#include "controllers/xps_hwicap.hpp"
#include "core/system.hpp"
#include "fault/injector.hpp"

namespace uparc {
namespace {

using namespace uparc::literals;
using fault::FaultPlan;
using fault::FaultSite;
using manager::RecoveryAction;

bits::PartialBitstream make_bs(std::size_t body_bytes, u64 seed = 5) {
  bits::GeneratorConfig cfg;
  cfg.target_body_bytes = body_bytes;
  cfg.seed = seed;
  return bits::Generator(cfg).generate();
}

// ------------------------------------------------------- injector mechanics

TEST(FaultInjector, AfterBurstAndMaxFiresShapeTheSchedule) {
  sim::Simulation sim;
  mem::Bram bram(sim, "bram", 4096);
  FaultPlan plan;
  plan.seed = 7;
  plan.arm(FaultSite::kBramRead, {.rate = 1.0, .after = 10, .burst = 3, .max_fires = 1});
  fault::FaultInjector inj(sim, "inj", plan);
  inj.arm_bram(bram);

  // All-zero BRAM: any nonzero read is a corrupted one.
  std::vector<std::size_t> corrupted;
  for (std::size_t i = 0; i < 30; ++i) {
    if (bram.read_word(i) != 0) corrupted.push_back(i);
  }
  // Skip 10 opportunities, then one fire covering a 3-read burst, then done.
  EXPECT_EQ(corrupted, (std::vector<std::size_t>{10, 11, 12}));
  EXPECT_EQ(inj.fires(FaultSite::kBramRead), 3u);
}

TEST(FaultInjector, UnarmedSitesCostNothingAndNeverFire) {
  sim::Simulation sim;
  mem::Bram bram(sim, "bram", 4096);
  fault::FaultInjector inj(sim, "inj", FaultPlan{});
  inj.arm_bram(bram);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(bram.read_word(i), 0u);
  EXPECT_EQ(inj.total_fires(), 0u);
}

// --------------------------------------------------- deterministic replay

TEST(FaultReplay, SameSeedProducesBitIdenticalOutcomes) {
  auto run_once = [](u64 seed) {
    core::System sys;
    FaultPlan plan;
    plan.seed = seed;
    plan.arm(FaultSite::kBramRead, {.rate = 2e-3});
    fault::FaultInjector inj(sys.sim(), "inj", plan);
    inj.arm(sys.uparc(), sys.icap());
    auto out = sys.run_recovery_blocking(make_bs(64_KiB));
    return std::tuple{out.success,
                      out.attempts,
                      out.watchdog_fires,
                      (out.end - out.start).ps(),
                      out.energy_uj,
                      inj.fires(FaultSite::kBramRead),
                      sys.icap().words_consumed(),
                      sys.sim().events_executed()};
  };
  const auto a = run_once(11);
  const auto b = run_once(11);
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<5>(a), 0u);  // the plan actually injected faults
}

// ------------------------------------------------------ recovery scenarios

TEST(Recovery, CleanRunTakesOneAttemptAndNoWatchdog) {
  core::System sys;
  auto out = sys.run_recovery_blocking(make_bs(64_KiB));
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.watchdog_fires, 0u);
  EXPECT_EQ(out.recovery_energy_uj, 0.0);
  EXPECT_GT(out.energy_uj, 0.0);
  ASSERT_EQ(out.history.size(), 1u);
  EXPECT_EQ(out.history[0].action, RecoveryAction::kNone);
}

TEST(Recovery, DcmLockFailureTimesOutThenRelocks) {
  core::System sys;
  FaultPlan plan;
  plan.seed = 3;
  plan.arm(FaultSite::kDcmLockFail, {.rate = 1.0, .max_fires = 1});
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm_dcm(sys.uparc().dyclogen().dcm(clocking::ClockId::kReconfig));

  // The retune's relock fails (injected): CLK_2 stays supply-gated.
  (void)sys.set_frequency_blocking(Frequency::mhz(200));
  EXPECT_FALSE(sys.uparc().dyclogen().dcm(clocking::ClockId::kReconfig).locked());

  auto out = sys.run_recovery_blocking(make_bs(64_KiB));
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_GE(out.watchdog_fires, 1u);
  ASSERT_GE(out.history.size(), 2u);
  // Attempt 1 stalled on the gated clock until the watchdog unstuck it.
  EXPECT_TRUE(out.history[0].result.cause == ErrorCause::kTimeout ||
              out.history[0].result.cause == ErrorCause::kClockUnlocked)
      << to_string(out.history[0].result.cause);
  EXPECT_EQ(out.history[0].action, RecoveryAction::kRelock);
  EXPECT_TRUE(sys.uparc().dyclogen().dcm(clocking::ClockId::kReconfig).locked());
}

TEST(Recovery, TruncatedPreloadRecoversViaRepreload) {
  core::System sys;
  FaultPlan plan;
  plan.seed = 4;
  plan.arm(FaultSite::kPreloadTruncate, {.rate = 1.0, .max_fires = 1, .param = 0.5});
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm_preloader(sys.uparc().preloader());

  auto out = sys.run_recovery_blocking(make_bs(64_KiB));
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.attempts, 2u);
  ASSERT_GE(out.history.size(), 2u);
  EXPECT_FALSE(out.history[0].result.success);
  EXPECT_EQ(out.history[0].action, RecoveryAction::kRepreload);
  EXPECT_EQ(sys.uparc().preloader().stats().get("truncated_preloads"), 1.0);
}

TEST(Recovery, MidFrameIcapAbortRecoversViaRepreload) {
  core::System sys;
  FaultPlan plan;
  plan.seed = 5;
  plan.arm(FaultSite::kIcapAbort, {.rate = 1.0, .after = 1000, .max_fires = 1});
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm_icap(sys.icap());

  auto out = sys.run_recovery_blocking(make_bs(64_KiB));
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.attempts, 2u);
  ASSERT_GE(out.history.size(), 2u);
  EXPECT_EQ(out.history[0].result.cause, ErrorCause::kIcapAbort);
  EXPECT_EQ(out.history[0].action, RecoveryAction::kRepreload);
}

TEST(Recovery, RetriesWaitOutTheDeterministicBackoffSchedule) {
  core::System sys;
  FaultPlan plan;
  plan.seed = 4;
  plan.arm(FaultSite::kPreloadTruncate, {.rate = 1.0, .max_fires = 2, .param = 0.5});
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm_preloader(sys.uparc().preloader());

  auto out = sys.run_recovery_blocking(make_bs(64_KiB));
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.attempts, 3u);
  // Two retries: 20us * weight(1.0), then doubled — exactly reproducible
  // from the policy, no randomness involved.
  EXPECT_EQ(out.backoffs, 2u);
  const manager::RecoveryPolicy policy;
  EXPECT_EQ(out.backoff_total,
            TimePs(policy.backoff_base.ps() +
                   static_cast<u64>(static_cast<double>(policy.backoff_base.ps()) *
                                    policy.backoff_factor)));
  EXPECT_EQ(sys.metrics().counter_value("recovery.backoffs"), 2.0);
  EXPECT_GE(out.end - out.start, out.backoff_total);
}

TEST(Recovery, BackoffReplaysBitIdenticallyAndZeroBaseDisablesIt) {
  auto run_once = [](TimePs base) {
    core::System sys;
    FaultPlan plan;
    plan.seed = 4;
    plan.arm(FaultSite::kPreloadTruncate, {.rate = 1.0, .max_fires = 2, .param = 0.5});
    fault::FaultInjector inj(sys.sim(), "inj", plan);
    inj.arm_preloader(sys.uparc().preloader());
    manager::RecoveryPolicy policy;
    policy.backoff_base = base;
    auto out = sys.run_recovery_blocking(make_bs(64_KiB), policy);
    return std::tuple{out.success, out.attempts, out.backoffs, out.backoff_total.ps(),
                      (out.end - out.start).ps()};
  };
  const auto a = run_once(TimePs::from_us(20));
  const auto b = run_once(TimePs::from_us(20));
  EXPECT_EQ(a, b);

  const auto off = run_once(TimePs{});
  EXPECT_TRUE(std::get<0>(off));
  EXPECT_EQ(std::get<2>(off), 0u);           // no backoffs taken
  EXPECT_EQ(std::get<3>(off), 0u);
  EXPECT_LT(std::get<4>(off), std::get<4>(a));  // and the run is faster
}

TEST(Recovery, BackoffIsCappedByPolicyAndBudget) {
  core::System sys;
  manager::RecoveryPolicy policy;
  policy.backoff_base = TimePs::from_us(900);
  policy.backoff_factor = 10.0;
  policy.backoff_cap = TimePs::from_us(1500);
  policy.max_attempts = 4;
  FaultPlan plan;
  plan.seed = 4;
  plan.arm(FaultSite::kPreloadTruncate, {.rate = 1.0, .max_fires = 3, .param = 0.5});
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm_preloader(sys.uparc().preloader());

  auto out = sys.run_recovery_blocking(make_bs(64_KiB), policy);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.backoffs, 3u);
  // Retries 2 and 3 would wait 9ms/90ms uncapped; the cap (and the attempt
  // cycle budget, whichever is tighter) bounds the whole schedule.
  EXPECT_GT(out.backoff_total.ps(), 0u);
  EXPECT_LE(out.backoff_total, TimePs::from_us(900 + 1500 + 1500));
}

TEST(Recovery, WatchdogBoundsEveryAttemptAndStepsDownBeforeGivingUp) {
  core::System sys;
  // A pathologically tight cycle budget: every attempt times out while the
  // DCM stays locked, which the policy reads as a timing problem.
  manager::RecoveryPolicy policy;
  policy.watchdog_slack = 0.05;
  policy.watchdog_floor = TimePs::from_us(10);
  auto out = sys.run_recovery_blocking(make_bs(64_KiB), policy);
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.attempts, policy.max_attempts);
  EXPECT_EQ(out.watchdog_fires, policy.max_attempts);
  ASSERT_EQ(out.history.size(), 4u);
  for (const auto& rec : out.history) {
    // kTimeout when the watchdog aborted a streaming UReC, kStalled when it
    // fired while the attempt was still preloading.
    EXPECT_TRUE(rec.result.cause == ErrorCause::kTimeout ||
                rec.result.cause == ErrorCause::kStalled)
        << to_string(rec.result.cause);
  }
  EXPECT_EQ(out.history[0].action, RecoveryAction::kFrequencyStepDown);
  EXPECT_EQ(out.history.back().action, RecoveryAction::kGiveUp);
  // The step-down actually lowered CLK_2.
  EXPECT_LT(out.history[1].frequency.in_mhz(), out.history[0].frequency.in_mhz());
  // Bounded latency: attempts x (budget + relock), far under a second.
  EXPECT_LT((out.end - out.start).ms(), 50.0);
}

TEST(Recovery, PersistentCorruptionGivesUpWithinTheAttemptBudget) {
  core::System sys;
  FaultPlan plan;
  plan.seed = 6;
  plan.arm(FaultSite::kIcapCorrupt, {.rate = 1.0});  // every ICAP word flipped
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm_icap(sys.icap());

  manager::RecoveryPolicy policy;
  auto out = sys.run_recovery_blocking(make_bs(64_KiB), policy);
  EXPECT_FALSE(out.success);
  EXPECT_LE(out.attempts, policy.max_attempts);
  EXPECT_EQ(out.history.back().action, RecoveryAction::kGiveUp);
  EXPECT_NE(out.final_result.cause, ErrorCause::kNone);
}

TEST(Recovery, DecoderCorruptionFallsBackToSimplerCodec) {
  core::System sys;
  // 500 KiB does not fit the 256 KB BRAM raw -> compressed mode (XMatchPro).
  auto bs = make_bs(500_KiB, 9);
  // Poison the decoder input for as long as the faulty codec is installed:
  // the fallback (kRle) restage then streams untouched.
  sys.uparc().decompressor().set_input_tap([&](u32 w) {
    return sys.uparc().codec() == compress::CodecId::kXMatchPro ? ~w : w;
  });

  auto out = sys.run_recovery_blocking(bs);
  EXPECT_TRUE(out.success);
  ASSERT_GE(out.history.size(), 2u);
  EXPECT_EQ(out.history[0].result.cause, ErrorCause::kDecompressor);
  EXPECT_EQ(out.history[0].action, RecoveryAction::kCodecFallback);
  EXPECT_EQ(sys.uparc().codec(), compress::CodecId::kRle);
}

// --------------------------------------------- end-to-end recovery demo

TEST(Recovery, EndToEndLockLossPlusCorruptedBurstCompletes) {
  // Reference run: learn the first attempt's streaming window (both systems
  // evolve identically until the first injected fault).
  const auto bs = make_bs(64_KiB, 5);
  TimePs mid{};
  TimePs clean_duration{};
  {
    core::System clean;
    auto out = clean.run_recovery_blocking(bs);
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.attempts, 1u);
    const TimePs a = out.history[0].result.start;
    const TimePs b = out.history[0].result.end;
    mid = a + TimePs{(b - a).ps() / 2};
    clean_duration = out.end - out.start;
  }

  core::System sys;
  FaultPlan plan;
  plan.seed = 21;
  // One corrupted 8-word BRAM burst, timed (by opportunity count) to land in
  // the post-relock attempt: attempt 1 cannot exceed the payload's own read
  // count before the lock loss stalls it.
  const u64 reads_per_attempt = static_cast<u64>(bs.body.size()) + 1;
  plan.arm(FaultSite::kBramRead,
           {.rate = 1.0, .after = reads_per_attempt * 6 / 5, .burst = 8, .max_fires = 1});
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm(sys.uparc(), sys.icap());
  // Spontaneous LOCKED loss mid-stream on attempt 1.
  inj.schedule_lock_loss(sys.uparc().dyclogen().dcm(clocking::ClockId::kReconfig), mid);

  auto out = sys.run_recovery_blocking(bs);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_GE(out.watchdog_fires, 1u);
  ASSERT_EQ(out.history.size(), 3u);
  // Attempt 1: stalled by the lock loss, unstuck by the watchdog, relocked.
  EXPECT_EQ(out.history[0].action, RecoveryAction::kRelock);
  // Attempt 2: the corrupted burst surfaced as a data-path failure.
  EXPECT_FALSE(out.history[1].result.success);
  EXPECT_EQ(out.history[1].action, RecoveryAction::kRepreload);
  // Attempt 3: clean retry.
  EXPECT_TRUE(out.history[2].result.success);
  // Recovery cost is visible through the power substrate and the watchdog
  // kept the whole ordeal bounded.
  EXPECT_GT(out.recovery_energy_uj, 0.0);
  EXPECT_GT(out.energy_uj, out.recovery_energy_uj);
  EXPECT_LT((out.end - out.start).ms(), clean_duration.ms() + 20.0);
}

// ----------------------------------------- baseline storage fault paths

TEST(BaselineFaults, Ddr2ReadCorruptionFailsCleanly) {
  core::System sys;
  auto controller = sys.make_baseline("MST_ICAP");
  auto* mst = static_cast<ctrl::MstIcap*>(controller.get());
  FaultPlan plan;
  plan.seed = 13;
  plan.arm(FaultSite::kDdr2Read, {.rate = 0.01});
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm_ddr2(mst->ddr());

  auto r = sys.run_controller_blocking(*controller, make_bs(64_KiB));
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.cause, ErrorCause::kNone);
  EXPECT_GT(inj.fires(FaultSite::kDdr2Read), 0u);
}

TEST(BaselineFaults, Ddr2StallsSlowTheRunButDoNotBreakIt) {
  auto run_once = [](bool with_stalls) {
    core::System sys;
    auto controller = sys.make_baseline("MST_ICAP");
    FaultPlan plan;
    plan.seed = 14;
    if (with_stalls) plan.arm(FaultSite::kDdr2Stall, {.rate = 1.0, .param = 100});
    fault::FaultInjector inj(sys.sim(), "inj", plan);
    inj.arm_ddr2(static_cast<ctrl::MstIcap*>(controller.get())->ddr());
    auto r = sys.run_controller_blocking(*controller, make_bs(64_KiB));
    EXPECT_TRUE(r.success);
    return r.duration();
  };
  EXPECT_GT(run_once(true).ps(), run_once(false).ps());
}

TEST(BaselineFaults, CompactFlashSectorCorruptionFailsCleanly) {
  core::System sys;
  auto controller = sys.make_baseline("xps_hwicap_cf");
  auto bs = make_bs(64_KiB);
  ASSERT_TRUE(controller->stage(bs).ok());

  auto* xps = static_cast<ctrl::XpsHwicap*>(controller.get());
  ASSERT_NE(xps->card(), nullptr);
  FaultPlan plan;
  plan.seed = 15;
  plan.arm(FaultSite::kCfSector, {.rate = 1.0});  // one flipped byte per sector
  fault::FaultInjector inj(sys.sim(), "inj", plan);
  inj.arm_compact_flash(*xps->card());

  std::optional<ctrl::ReconfigResult> got;
  controller->reconfigure([&](const ctrl::ReconfigResult& r) { got = r; });
  sys.sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->success);
  EXPECT_NE(got->cause, ErrorCause::kNone);
  EXPECT_GT(inj.fires(FaultSite::kCfSector), 0u);
}

}  // namespace
}  // namespace uparc
