# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_gen "/root/repo/build/tools/uparc_cli" "gen" "--out" "/root/repo/build/tools/cli_test.bit" "--size-kb" "32" "--name" "cli_smoke")
set_tests_properties(cli_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_inspect "/root/repo/build/tools/uparc_cli" "inspect" "/root/repo/build/tools/cli_test.bit")
set_tests_properties(cli_inspect PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/uparc_cli" "run" "/root/repo/build/tools/cli_test.bit" "--mhz" "362.5")
set_tests_properties(cli_run PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compress "/root/repo/build/tools/uparc_cli" "compress" "/root/repo/build/tools/cli_test.bit" "/root/repo/build/tools/cli_test.xm" "--codec" "X-MatchPRO")
set_tests_properties(cli_compress PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/uparc_cli" "sweep" "/root/repo/build/tools/cli_test.bit")
set_tests_properties(cli_sweep PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_ratios "/root/repo/build/tools/uparc_cli" "ratios" "/root/repo/build/tools/cli_test.bit")
set_tests_properties(cli_ratios PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/uparc_cli" "bogus_command")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
