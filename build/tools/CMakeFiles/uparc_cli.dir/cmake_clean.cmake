file(REMOVE_RECURSE
  "CMakeFiles/uparc_cli.dir/uparc_cli.cpp.o"
  "CMakeFiles/uparc_cli.dir/uparc_cli.cpp.o.d"
  "uparc_cli"
  "uparc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uparc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
