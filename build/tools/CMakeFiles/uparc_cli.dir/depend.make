# Empty dependencies file for uparc_cli.
# This may be replaced when dependencies are built.
