# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/bus_test[1]_include.cmake")
include("/root/repo/build/tests/bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/compress_property_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/codec_params_test[1]_include.cmake")
include("/root/repo/build/tests/icap_test[1]_include.cmake")
include("/root/repo/build/tests/clocking_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/controllers_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/online_test[1]_include.cmake")
include("/root/repo/build/tests/profiles_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/system_property_test[1]_include.cmake")
include("/root/repo/build/tests/scrub_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/paper_points_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
