# Empty dependencies file for clocking_test.
# This may be replaced when dependencies are built.
