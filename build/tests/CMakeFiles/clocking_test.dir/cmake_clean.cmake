file(REMOVE_RECURSE
  "CMakeFiles/clocking_test.dir/clocking_test.cpp.o"
  "CMakeFiles/clocking_test.dir/clocking_test.cpp.o.d"
  "clocking_test"
  "clocking_test.pdb"
  "clocking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
