file(REMOVE_RECURSE
  "CMakeFiles/compress_property_test.dir/compress_property_test.cpp.o"
  "CMakeFiles/compress_property_test.dir/compress_property_test.cpp.o.d"
  "compress_property_test"
  "compress_property_test.pdb"
  "compress_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
