file(REMOVE_RECURSE
  "CMakeFiles/paper_points_test.dir/paper_points_test.cpp.o"
  "CMakeFiles/paper_points_test.dir/paper_points_test.cpp.o.d"
  "paper_points_test"
  "paper_points_test.pdb"
  "paper_points_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_points_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
