# Empty compiler generated dependencies file for paper_points_test.
# This may be replaced when dependencies are built.
