# Empty dependencies file for codec_params_test.
# This may be replaced when dependencies are built.
