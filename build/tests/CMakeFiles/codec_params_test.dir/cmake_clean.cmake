file(REMOVE_RECURSE
  "CMakeFiles/codec_params_test.dir/codec_params_test.cpp.o"
  "CMakeFiles/codec_params_test.dir/codec_params_test.cpp.o.d"
  "codec_params_test"
  "codec_params_test.pdb"
  "codec_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
