# Empty dependencies file for uparc.
# This may be replaced when dependencies are built.
