file(REMOVE_RECURSE
  "libuparc.a"
)
