
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/frame.cpp" "src/CMakeFiles/uparc.dir/bitstream/frame.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bitstream/frame.cpp.o.d"
  "/root/repo/src/bitstream/generator.cpp" "src/CMakeFiles/uparc.dir/bitstream/generator.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bitstream/generator.cpp.o.d"
  "/root/repo/src/bitstream/header.cpp" "src/CMakeFiles/uparc.dir/bitstream/header.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bitstream/header.cpp.o.d"
  "/root/repo/src/bitstream/packet.cpp" "src/CMakeFiles/uparc.dir/bitstream/packet.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bitstream/packet.cpp.o.d"
  "/root/repo/src/bitstream/parser.cpp" "src/CMakeFiles/uparc.dir/bitstream/parser.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bitstream/parser.cpp.o.d"
  "/root/repo/src/bitstream/relocate.cpp" "src/CMakeFiles/uparc.dir/bitstream/relocate.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bitstream/relocate.cpp.o.d"
  "/root/repo/src/bitstream/writer.cpp" "src/CMakeFiles/uparc.dir/bitstream/writer.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bitstream/writer.cpp.o.d"
  "/root/repo/src/bus/hwicap_core.cpp" "src/CMakeFiles/uparc.dir/bus/hwicap_core.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bus/hwicap_core.cpp.o.d"
  "/root/repo/src/bus/hwicap_driver.cpp" "src/CMakeFiles/uparc.dir/bus/hwicap_driver.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bus/hwicap_driver.cpp.o.d"
  "/root/repo/src/bus/plb.cpp" "src/CMakeFiles/uparc.dir/bus/plb.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/bus/plb.cpp.o.d"
  "/root/repo/src/clocking/dyclogen.cpp" "src/CMakeFiles/uparc.dir/clocking/dyclogen.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/clocking/dyclogen.cpp.o.d"
  "/root/repo/src/clocking/md_search.cpp" "src/CMakeFiles/uparc.dir/clocking/md_search.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/clocking/md_search.cpp.o.d"
  "/root/repo/src/common/bitio.cpp" "src/CMakeFiles/uparc.dir/common/bitio.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/common/bitio.cpp.o.d"
  "/root/repo/src/common/crc32.cpp" "src/CMakeFiles/uparc.dir/common/crc32.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/common/crc32.cpp.o.d"
  "/root/repo/src/common/hexdump.cpp" "src/CMakeFiles/uparc.dir/common/hexdump.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/common/hexdump.cpp.o.d"
  "/root/repo/src/common/io.cpp" "src/CMakeFiles/uparc.dir/common/io.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/common/io.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/uparc.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/common/log.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/uparc.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/common/units.cpp.o.d"
  "/root/repo/src/compress/codec.cpp" "src/CMakeFiles/uparc.dir/compress/codec.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/codec.cpp.o.d"
  "/root/repo/src/compress/deflate_lite.cpp" "src/CMakeFiles/uparc.dir/compress/deflate_lite.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/deflate_lite.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/CMakeFiles/uparc.dir/compress/huffman.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/huffman.cpp.o.d"
  "/root/repo/src/compress/lz77.cpp" "src/CMakeFiles/uparc.dir/compress/lz77.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/lz77.cpp.o.d"
  "/root/repo/src/compress/lz78.cpp" "src/CMakeFiles/uparc.dir/compress/lz78.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/lz78.cpp.o.d"
  "/root/repo/src/compress/lzma_lite.cpp" "src/CMakeFiles/uparc.dir/compress/lzma_lite.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/lzma_lite.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/CMakeFiles/uparc.dir/compress/registry.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/registry.cpp.o.d"
  "/root/repo/src/compress/rle.cpp" "src/CMakeFiles/uparc.dir/compress/rle.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/rle.cpp.o.d"
  "/root/repo/src/compress/stats.cpp" "src/CMakeFiles/uparc.dir/compress/stats.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/stats.cpp.o.d"
  "/root/repo/src/compress/streaming.cpp" "src/CMakeFiles/uparc.dir/compress/streaming.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/streaming.cpp.o.d"
  "/root/repo/src/compress/xmatchpro.cpp" "src/CMakeFiles/uparc.dir/compress/xmatchpro.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/compress/xmatchpro.cpp.o.d"
  "/root/repo/src/controllers/bram_hwicap.cpp" "src/CMakeFiles/uparc.dir/controllers/bram_hwicap.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/controllers/bram_hwicap.cpp.o.d"
  "/root/repo/src/controllers/controller.cpp" "src/CMakeFiles/uparc.dir/controllers/controller.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/controllers/controller.cpp.o.d"
  "/root/repo/src/controllers/farm.cpp" "src/CMakeFiles/uparc.dir/controllers/farm.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/controllers/farm.cpp.o.d"
  "/root/repo/src/controllers/flashcap.cpp" "src/CMakeFiles/uparc.dir/controllers/flashcap.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/controllers/flashcap.cpp.o.d"
  "/root/repo/src/controllers/mst_icap.cpp" "src/CMakeFiles/uparc.dir/controllers/mst_icap.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/controllers/mst_icap.cpp.o.d"
  "/root/repo/src/controllers/xps_hwicap.cpp" "src/CMakeFiles/uparc.dir/controllers/xps_hwicap.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/controllers/xps_hwicap.cpp.o.d"
  "/root/repo/src/core/decompressor_unit.cpp" "src/CMakeFiles/uparc.dir/core/decompressor_unit.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/core/decompressor_unit.cpp.o.d"
  "/root/repo/src/core/resources.cpp" "src/CMakeFiles/uparc.dir/core/resources.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/core/resources.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/uparc.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/core/system.cpp.o.d"
  "/root/repo/src/core/timing_model.cpp" "src/CMakeFiles/uparc.dir/core/timing_model.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/core/timing_model.cpp.o.d"
  "/root/repo/src/core/uparc.cpp" "src/CMakeFiles/uparc.dir/core/uparc.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/core/uparc.cpp.o.d"
  "/root/repo/src/core/urec.cpp" "src/CMakeFiles/uparc.dir/core/urec.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/core/urec.cpp.o.d"
  "/root/repo/src/icap/config_plane.cpp" "src/CMakeFiles/uparc.dir/icap/config_plane.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/icap/config_plane.cpp.o.d"
  "/root/repo/src/icap/dcm.cpp" "src/CMakeFiles/uparc.dir/icap/dcm.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/icap/dcm.cpp.o.d"
  "/root/repo/src/icap/drp.cpp" "src/CMakeFiles/uparc.dir/icap/drp.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/icap/drp.cpp.o.d"
  "/root/repo/src/icap/icap.cpp" "src/CMakeFiles/uparc.dir/icap/icap.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/icap/icap.cpp.o.d"
  "/root/repo/src/manager/adaptation.cpp" "src/CMakeFiles/uparc.dir/manager/adaptation.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/manager/adaptation.cpp.o.d"
  "/root/repo/src/manager/control.cpp" "src/CMakeFiles/uparc.dir/manager/control.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/manager/control.cpp.o.d"
  "/root/repo/src/manager/microblaze.cpp" "src/CMakeFiles/uparc.dir/manager/microblaze.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/manager/microblaze.cpp.o.d"
  "/root/repo/src/manager/preloader.cpp" "src/CMakeFiles/uparc.dir/manager/preloader.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/manager/preloader.cpp.o.d"
  "/root/repo/src/mem/bram.cpp" "src/CMakeFiles/uparc.dir/mem/bram.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/mem/bram.cpp.o.d"
  "/root/repo/src/mem/compact_flash.cpp" "src/CMakeFiles/uparc.dir/mem/compact_flash.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/mem/compact_flash.cpp.o.d"
  "/root/repo/src/mem/ddr2.cpp" "src/CMakeFiles/uparc.dir/mem/ddr2.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/mem/ddr2.cpp.o.d"
  "/root/repo/src/power/breakdown.cpp" "src/CMakeFiles/uparc.dir/power/breakdown.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/power/breakdown.cpp.o.d"
  "/root/repo/src/power/calibration.cpp" "src/CMakeFiles/uparc.dir/power/calibration.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/power/calibration.cpp.o.d"
  "/root/repo/src/power/model.cpp" "src/CMakeFiles/uparc.dir/power/model.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/power/model.cpp.o.d"
  "/root/repo/src/power/rail.cpp" "src/CMakeFiles/uparc.dir/power/rail.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/power/rail.cpp.o.d"
  "/root/repo/src/power/scope.cpp" "src/CMakeFiles/uparc.dir/power/scope.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/power/scope.cpp.o.d"
  "/root/repo/src/region/module_library.cpp" "src/CMakeFiles/uparc.dir/region/module_library.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/region/module_library.cpp.o.d"
  "/root/repo/src/region/region.cpp" "src/CMakeFiles/uparc.dir/region/region.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/region/region.cpp.o.d"
  "/root/repo/src/region/region_manager.cpp" "src/CMakeFiles/uparc.dir/region/region_manager.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/region/region_manager.cpp.o.d"
  "/root/repo/src/sched/energy_policy.cpp" "src/CMakeFiles/uparc.dir/sched/energy_policy.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sched/energy_policy.cpp.o.d"
  "/root/repo/src/sched/executor.cpp" "src/CMakeFiles/uparc.dir/sched/executor.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sched/executor.cpp.o.d"
  "/root/repo/src/sched/online.cpp" "src/CMakeFiles/uparc.dir/sched/online.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sched/online.cpp.o.d"
  "/root/repo/src/sched/prefetch.cpp" "src/CMakeFiles/uparc.dir/sched/prefetch.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sched/prefetch.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/uparc.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/task.cpp" "src/CMakeFiles/uparc.dir/sched/task.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sched/task.cpp.o.d"
  "/root/repo/src/scrub/readback.cpp" "src/CMakeFiles/uparc.dir/scrub/readback.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/scrub/readback.cpp.o.d"
  "/root/repo/src/scrub/scrubber.cpp" "src/CMakeFiles/uparc.dir/scrub/scrubber.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/scrub/scrubber.cpp.o.d"
  "/root/repo/src/scrub/seu.cpp" "src/CMakeFiles/uparc.dir/scrub/seu.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/scrub/seu.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "src/CMakeFiles/uparc.dir/sim/clock.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sim/clock.cpp.o.d"
  "/root/repo/src/sim/fifo.cpp" "src/CMakeFiles/uparc.dir/sim/fifo.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sim/fifo.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/CMakeFiles/uparc.dir/sim/kernel.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sim/kernel.cpp.o.d"
  "/root/repo/src/sim/module.cpp" "src/CMakeFiles/uparc.dir/sim/module.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sim/module.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/uparc.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/uparc.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/uparc.dir/sim/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
