# Empty dependencies file for ablation_wait_mode.
# This may be replaced when dependencies are built.
