file(REMOVE_RECURSE
  "CMakeFiles/ablation_wait_mode.dir/ablation_wait_mode.cpp.o"
  "CMakeFiles/ablation_wait_mode.dir/ablation_wait_mode.cpp.o.d"
  "ablation_wait_mode"
  "ablation_wait_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wait_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
