# Empty compiler generated dependencies file for ablation_area_power.
# This may be replaced when dependencies are built.
