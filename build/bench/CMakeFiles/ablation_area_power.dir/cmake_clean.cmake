file(REMOVE_RECURSE
  "CMakeFiles/ablation_area_power.dir/ablation_area_power.cpp.o"
  "CMakeFiles/ablation_area_power.dir/ablation_area_power.cpp.o.d"
  "ablation_area_power"
  "ablation_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
