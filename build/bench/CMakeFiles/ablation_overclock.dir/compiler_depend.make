# Empty compiler generated dependencies file for ablation_overclock.
# This may be replaced when dependencies are built.
