file(REMOVE_RECURSE
  "CMakeFiles/ablation_overclock.dir/ablation_overclock.cpp.o"
  "CMakeFiles/ablation_overclock.dir/ablation_overclock.cpp.o.d"
  "ablation_overclock"
  "ablation_overclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
