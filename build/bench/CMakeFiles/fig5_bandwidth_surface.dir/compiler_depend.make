# Empty compiler generated dependencies file for fig5_bandwidth_surface.
# This may be replaced when dependencies are built.
