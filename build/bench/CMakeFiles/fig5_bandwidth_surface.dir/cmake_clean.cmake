file(REMOVE_RECURSE
  "CMakeFiles/fig5_bandwidth_surface.dir/fig5_bandwidth_surface.cpp.o"
  "CMakeFiles/fig5_bandwidth_surface.dir/fig5_bandwidth_surface.cpp.o.d"
  "fig5_bandwidth_surface"
  "fig5_bandwidth_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bandwidth_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
