file(REMOVE_RECURSE
  "CMakeFiles/energy_efficiency.dir/energy_efficiency.cpp.o"
  "CMakeFiles/energy_efficiency.dir/energy_efficiency.cpp.o.d"
  "energy_efficiency"
  "energy_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
