# Empty dependencies file for table3_controllers.
# This may be replaced when dependencies are built.
