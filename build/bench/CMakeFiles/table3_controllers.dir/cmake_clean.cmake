file(REMOVE_RECURSE
  "CMakeFiles/table3_controllers.dir/table3_controllers.cpp.o"
  "CMakeFiles/table3_controllers.dir/table3_controllers.cpp.o.d"
  "table3_controllers"
  "table3_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
