file(REMOVE_RECURSE
  "CMakeFiles/ablation_manager_impl.dir/ablation_manager_impl.cpp.o"
  "CMakeFiles/ablation_manager_impl.dir/ablation_manager_impl.cpp.o.d"
  "ablation_manager_impl"
  "ablation_manager_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_manager_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
