# Empty dependencies file for ablation_manager_impl.
# This may be replaced when dependencies are built.
