# Empty dependencies file for compressed_mode.
# This may be replaced when dependencies are built.
