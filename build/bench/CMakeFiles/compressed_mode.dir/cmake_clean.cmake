file(REMOVE_RECURSE
  "CMakeFiles/compressed_mode.dir/compressed_mode.cpp.o"
  "CMakeFiles/compressed_mode.dir/compressed_mode.cpp.o.d"
  "compressed_mode"
  "compressed_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
