# Empty compiler generated dependencies file for ablation_codec_choice.
# This may be replaced when dependencies are built.
