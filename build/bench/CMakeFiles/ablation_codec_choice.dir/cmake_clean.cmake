file(REMOVE_RECURSE
  "CMakeFiles/ablation_codec_choice.dir/ablation_codec_choice.cpp.o"
  "CMakeFiles/ablation_codec_choice.dir/ablation_codec_choice.cpp.o.d"
  "ablation_codec_choice"
  "ablation_codec_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codec_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
