# Empty dependencies file for fig7_power_traces.
# This may be replaced when dependencies are built.
