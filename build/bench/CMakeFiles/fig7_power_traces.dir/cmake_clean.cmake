file(REMOVE_RECURSE
  "CMakeFiles/fig7_power_traces.dir/fig7_power_traces.cpp.o"
  "CMakeFiles/fig7_power_traces.dir/fig7_power_traces.cpp.o.d"
  "fig7_power_traces"
  "fig7_power_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_power_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
