file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_scrubber.dir/fault_tolerant_scrubber.cpp.o"
  "CMakeFiles/fault_tolerant_scrubber.dir/fault_tolerant_scrubber.cpp.o.d"
  "fault_tolerant_scrubber"
  "fault_tolerant_scrubber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_scrubber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
