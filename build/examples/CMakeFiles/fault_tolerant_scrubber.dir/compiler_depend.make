# Empty compiler generated dependencies file for fault_tolerant_scrubber.
# This may be replaced when dependencies are built.
