# Empty compiler generated dependencies file for multi_region_system.
# This may be replaced when dependencies are built.
