file(REMOVE_RECURSE
  "CMakeFiles/multi_region_system.dir/multi_region_system.cpp.o"
  "CMakeFiles/multi_region_system.dir/multi_region_system.cpp.o.d"
  "multi_region_system"
  "multi_region_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_region_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
