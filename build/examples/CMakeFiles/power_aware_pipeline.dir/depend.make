# Empty dependencies file for power_aware_pipeline.
# This may be replaced when dependencies are built.
