file(REMOVE_RECURSE
  "CMakeFiles/power_aware_pipeline.dir/power_aware_pipeline.cpp.o"
  "CMakeFiles/power_aware_pipeline.dir/power_aware_pipeline.cpp.o.d"
  "power_aware_pipeline"
  "power_aware_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_aware_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
