file(REMOVE_RECURSE
  "CMakeFiles/adaptive_codec_swap.dir/adaptive_codec_swap.cpp.o"
  "CMakeFiles/adaptive_codec_swap.dir/adaptive_codec_swap.cpp.o.d"
  "adaptive_codec_swap"
  "adaptive_codec_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_codec_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
