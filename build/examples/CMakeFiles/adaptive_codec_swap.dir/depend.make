# Empty dependencies file for adaptive_codec_swap.
# This may be replaced when dependencies are built.
