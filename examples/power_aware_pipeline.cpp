// Power-aware video pipeline: one reconfigurable region alternates between
// a deblocking filter and a motion-estimation module, 25 swaps per second.
// Each frame-period leaves slack, so the Manager's frequency-adaptation
// policy (paper §III-A-3 / §V) retunes DyCloGen per swap:
//
//   * max-performance : always 362.5 MHz — fastest, highest peak power;
//   * min-power       : the lowest frequency still meeting the swap
//                       deadline — the paper's "power-aware solution";
//   * min-energy      : argmin of predicted energy over the M/D grid.
//
// The example runs the same workload under all three policies on the live
// simulated system (not just the planner) and prints the trade-off.
#include <cstdio>

#include "core/system.hpp"

namespace {

using namespace uparc;
using namespace uparc::literals;

struct Workload {
  bits::PartialBitstream bitstream;
  const char* name;
};

struct Totals {
  double energy_uj = 0;
  double peak_mw = 0;
  double worst_us = 0;
  unsigned misses = 0;
};

Totals run_policy(manager::FrequencyPolicy policy, const std::vector<Workload>& modules,
                  unsigned swaps, TimePs deadline) {
  core::System sys;
  Totals totals;
  for (unsigned i = 0; i < swaps; ++i) {
    const Workload& w = modules[i % modules.size()];
    if (!sys.stage(w.bitstream).ok()) break;
    auto plan = sys.adapt_blocking(policy, deadline);
    if (!plan) {
      ++totals.misses;
      continue;
    }
    auto r = sys.reconfigure_blocking();
    if (!r.success) {
      ++totals.misses;
      continue;
    }
    totals.energy_uj += r.energy_uj;
    totals.peak_mw = std::max(totals.peak_mw, sys.rail()->peak_mw(r.start, r.end));
    totals.worst_us = std::max(totals.worst_us, r.duration().us());
    if (r.duration() > deadline) ++totals.misses;
  }
  return totals;
}

}  // namespace

int main() {
  std::printf("power-aware pipeline: deblock <-> motion-estimation, 25 swaps/s\n");

  bits::GeneratorConfig g1;
  g1.target_body_bytes = 180_KiB;
  g1.design_name = "deblock";
  g1.seed = 11;
  bits::GeneratorConfig g2;
  g2.target_body_bytes = 120_KiB;
  g2.design_name = "motion_est";
  g2.seed = 12;
  const std::vector<Workload> modules = {
      {bits::Generator(g1).generate(), "deblock"},
      {bits::Generator(g2).generate(), "motion_est"},
  };

  // 25 swaps/s leaves a 2 ms reconfiguration budget within each 40 ms frame.
  const TimePs deadline = TimePs::from_ms(2.0);
  const unsigned swaps = 20;

  struct Row {
    const char* name;
    manager::FrequencyPolicy policy;
  };
  const Row rows[] = {
      {"max-performance", manager::FrequencyPolicy::kMaxPerformance},
      {"min-power (paper)", manager::FrequencyPolicy::kMinPowerDeadline},
      {"min-energy", manager::FrequencyPolicy::kMinEnergy},
  };

  std::printf("\n%-20s %10s %12s %12s %8s\n", "policy", "misses", "energy[uJ]", "peak[mW]",
              "worst");
  double max_peak = 0, min_peak = 1e18;
  for (const Row& row : rows) {
    Totals t = run_policy(row.policy, modules, swaps, deadline);
    std::printf("%-20s %10u %12.1f %12.1f %6.0fus\n", row.name, t.misses, t.energy_uj,
                t.peak_mw, t.worst_us);
    max_peak = std::max(max_peak, t.peak_mw);
    min_peak = std::min(min_peak, t.peak_mw);
  }

  std::printf("\nthe power-aware policy trades reconfiguration speed (still inside the\n");
  std::printf("2 ms budget) for a %.0f%% lower peak draw — thermal/supply headroom.\n",
              (1.0 - min_peak / max_peak) * 100.0);
  return 0;
}
