// Quickstart: build a UPaRC system, load a partial bitstream, reconfigure,
// and read the numbers back.
//
//   $ ./quickstart
//
// Walks through the whole public API surface once:
//   1. core::System — simulation kernel + power rail + ICAP + UPaRC;
//   2. bits::Generator — a synthetic partial bitstream (real bitstreams are
//      proprietary; the generator reproduces their structure and statistics);
//   3. DyCloGen frequency programming (the paper's M=29/D=8 = 362.5 MHz);
//   4. stage() (Manager preload into the 256 KB BRAM) + reconfigure();
//   5. results: time, bandwidth, energy, and config-plane verification.
#include <cstdio>

#include "core/system.hpp"

int main() {
  using namespace uparc;
  using namespace uparc::literals;

  // 1. A full system on the paper's Virtex-5 (ML506) target.
  core::System sys;

  // 2. A 64 KB partial bitstream for a hypothetical accelerator module.
  bits::GeneratorConfig gen;
  gen.target_body_bytes = 64_KiB;
  gen.design_name = "accelerator_v1";
  bits::PartialBitstream module = bits::Generator(gen).generate();
  std::printf("bitstream: '%s' for %s, %zu bytes, %zu frames\n",
              module.header.design_name.c_str(), module.header.part_name.c_str(),
              module.body_bytes(), module.frames.size());

  // 3. Run the reconfiguration clock at the paper's headline 362.5 MHz.
  auto choice = sys.set_frequency_blocking(Frequency::mhz(362.5));
  if (!choice) {
    std::printf("could not synthesize the requested frequency\n");
    return 1;
  }
  std::printf("CLK_2 <- F_in * %u/%u = %s\n", choice->m, choice->d,
              to_string(choice->f_out).c_str());

  // 4. Preload and reconfigure.
  if (Status st = sys.stage(module); !st.ok()) {
    std::printf("stage failed: %s\n", st.error().message.c_str());
    return 1;
  }
  ctrl::ReconfigResult r = sys.reconfigure_blocking();
  if (!r.success) {
    std::printf("reconfiguration failed: %s\n", r.error.c_str());
    return 1;
  }

  // 5. Results.
  std::printf("reconfigured in %s  ->  %.0f MB/s, %.1f uJ\n", to_string(r.duration()).c_str(),
              r.bandwidth().mb_per_sec(), r.energy_uj);
  std::printf("configuration plane verified: %s\n",
              sys.plane().contains(module.frames) ? "yes" : "NO");
  std::printf("ICAP: %llu words, %llu frames, CRC %s\n",
              static_cast<unsigned long long>(sys.icap().words_consumed()),
              static_cast<unsigned long long>(sys.icap().frames_committed()),
              sys.icap().crc_ok() ? "ok" : "MISMATCH");
  return 0;
}
