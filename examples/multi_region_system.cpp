// Multi-region PR system: the full stack working together.
//
// A software-defined-radio platform with two reconfigurable slots:
//   * slot_dsp  — alternates FFT and FIR accelerators,
//   * slot_codec — alternates a Viterbi and an LDPC decoder.
// All four module images live compressed in a ModuleLibrary (the external
// bitstream store); the RegionManager relocates each image to its target
// slot on demand and loads it through UPaRC; a frame-level scrubber guards
// slot_dsp against upsets in the background.
#include <cstdio>

#include "core/system.hpp"
#include "region/region_manager.hpp"
#include "scrub/scrubber.hpp"
#include "scrub/seu.hpp"

int main() {
  using namespace uparc;
  using namespace uparc::literals;

  core::System sys;
  (void)sys.set_frequency_blocking(Frequency::mhz(362.5));

  // --- floorplan: two non-overlapping slots --------------------------------
  region::Floorplan fp(bits::kVirtex5Sx50t);
  const bits::FrameAddress dsp_origin{0, 0, 1, 10, 0};
  if (!fp.add_region("slot_dsp", {dsp_origin, 700}).ok()) return 1;
  if (!fp.add_region("slot_codec", {bits::FrameAddress{0, 0, 3, 10, 0}, 700}).ok()) return 1;

  // --- module library: golden images, compressed at rest -------------------
  region::ModuleLibrary lib;
  auto add = [&](const char* name, std::size_t kb, u64 seed) {
    bits::GeneratorConfig g;
    g.target_body_bytes = kb * 1024;
    g.design_name = name;
    g.seed = seed;
    if (!lib.add_module(name, bits::Generator(g).generate()).ok()) std::abort();
  };
  add("fft", 96, 41);
  add("fir", 64, 42);
  add("viterbi", 80, 43);
  add("ldpc", 104, 44);
  std::printf("module library: %zu modules, %zu KB at rest (compressed)\n\n", lib.size(),
              lib.stored_bytes() / 1024);

  region::RegionManager mgr(sys.sim(), "mgr", std::move(fp), lib, sys.uparc(), sys.plane());

  auto load = [&](const char* module, const char* slot) {
    std::optional<region::LoadResult> got;
    mgr.load(module, slot, [&](const region::LoadResult& r) { got = r; });
    sys.sim().run();
    if (!got || !got->success) {
      std::printf("  load %s -> %s FAILED: %s\n", module, slot,
                  got ? got->error.c_str() : "no result");
      return;
    }
    std::printf("  load %-8s -> %-10s %8s  %7.0f MB/s\n", module, slot,
                to_string(got->total_latency()).c_str(),
                got->reconfig.bandwidth().mb_per_sec());
  };

  std::printf("mission phase 1: wideband scan\n");
  load("fft", "slot_dsp");
  load("viterbi", "slot_codec");

  std::printf("\nmission phase 2: narrowband track (swap both slots)\n");
  load("fir", "slot_dsp");
  load("ldpc", "slot_codec");

  std::printf("\noccupancy: slot_dsp=%s slot_codec=%s\n", mgr.occupant("slot_dsp").c_str(),
              mgr.occupant("slot_codec").c_str());

  // --- background scrubbing of the DSP slot --------------------------------
  auto dsp_golden = lib.instantiate("fir", mgr.floorplan(), *mgr.floorplan().find("slot_dsp"));
  if (!dsp_golden.ok()) return 1;
  std::vector<bits::FrameAddress> dsp_frames;
  for (const auto& f : dsp_golden.value().frames) dsp_frames.push_back(f.address);

  scrub::Readback rb(sys.sim(), "rb", sys.icap());
  scrub::ScrubberConfig scfg;
  scfg.mode = scrub::ScrubMode::kFrameRepair;
  scfg.period = TimePs::from_ms(5);
  scrub::Scrubber scrubber(sys.sim(), "scrubber", sys.uparc(), rb,
                           dsp_golden.value().frames, scfg);
  scrub::SeuInjector seu(sys.sim(), "seu", sys.plane(), dsp_frames, TimePs::from_ms(8), 3);

  std::printf("\nscrubbing slot_dsp (frame-level repair, 5 ms period) under upsets...\n");
  scrubber.start();
  seu.start();
  sys.sim().run_until(sys.sim().now() + TimePs::from_ms(100));
  seu.stop();
  sys.sim().run_until(sys.sim().now() + TimePs::from_ms(10));
  scrubber.stop();
  sys.sim().run();

  const auto& st = scrubber.scrub_stats();
  std::printf("  %llu upsets injected, %llu frames repaired over %llu rounds\n",
              static_cast<unsigned long long>(seu.injected()),
              static_cast<unsigned long long>(st.repairs),
              static_cast<unsigned long long>(st.rounds));
  std::printf("  repair bandwidth spent: %.2f ms readback, %.3f ms rewrite\n",
              st.readback_time.ms(), st.repair_time.ms());
  std::printf("  slot_dsp golden after campaign: %s\n",
              sys.plane().contains(dsp_golden.value().frames) ? "yes" : "NO");
  return 0;
}
