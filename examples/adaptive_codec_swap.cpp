// Adaptive codec swap — the paper's §VI future-work scenario, implemented:
// "enhance the adaptivity by choosing different bitstream compression
// techniques at run-time using dynamic partial reconfiguration."
//
// Scenario: a communications SDR platform cycles waveform modules. Small
// waveforms fit the BRAM raw; a large one needs compression. Depending on
// the mission phase the system prefers:
//   * X-MatchPRO — best balance (default);
//   * RLE        — when the decompressor slot must shrink (area pressure);
// The decompressor slot itself is swapped *through UPaRC* (it is just
// another reconfigurable module), and DyCloGen retunes CLK_3 to the new
// decoder's F_max.
#include <cstdio>

#include "core/system.hpp"

int main() {
  using namespace uparc;
  using namespace uparc::literals;

  core::System sys;
  std::printf("adaptive codec swap: SDR waveform loader\n\n");

  // A large waveform that cannot fit the 256 KB BRAM uncompressed.
  bits::GeneratorConfig gen;
  gen.target_body_bytes = 700_KiB;
  gen.design_name = "waveform_ofdm";
  gen.seed = 33;
  auto waveform = bits::Generator(gen).generate();

  // A medium waveform: fits compressed even with RLE's weaker ratio.
  bits::GeneratorConfig gen_med = gen;
  gen_med.target_body_bytes = 420_KiB;
  gen_med.design_name = "waveform_qpsk";
  gen_med.seed = 34;
  auto medium_waveform = bits::Generator(gen_med).generate();

  auto run_once = [&](const char* phase, const bits::PartialBitstream& waveform) {
    if (Status st = sys.stage(waveform); !st.ok()) {
      std::printf("  [%s] staging '%s' failed (expected with a weak codec): %s\n", phase,
                  waveform.header.design_name.c_str(), st.error().message.c_str());
      return;
    }
    (void)sys.set_frequency_blocking(Frequency::mhz(255));
    auto r = sys.reconfigure_blocking();
    std::printf("  [%s] codec=%-11s stored=%4zu KB  bw=%7.1f MB/s  verified=%s\n", phase,
                std::string(compress::make_codec(sys.uparc().codec())->name()).c_str(),
                sys.uparc().staged_stored_bytes() / 1024,
                r.success ? r.bandwidth().mb_per_sec() : 0.0,
                r.success && sys.plane().contains(waveform.frames) ? "yes" : "NO");
  };

  // Phase 1: default X-MatchPRO decompressor.
  run_once("mission", waveform);

  // Phase 2: area pressure — swap the decompressor slot to the small RLE
  // decoder (120 slices vs 1035), using UPaRC itself for the swap.
  std::printf("\n  swapping decompressor slot to RLE (partial reconfiguration)...\n");
  auto swap = sys.swap_decompressor_blocking(compress::CodecId::kRle);
  if (!swap.success) {
    std::printf("  swap failed: %s\n", swap.error.c_str());
    return 1;
  }
  std::printf("  slot reconfigured in %s; CLK_3 -> %s\n", to_string(swap.duration()).c_str(),
              to_string(sys.uparc().dyclogen().frequency(clocking::ClockId::kDecompress))
                  .c_str());
  // The big OFDM waveform no longer fits — RLE only saves ~63% — which is
  // exactly the trade-off the codec choice buys area with:
  run_once("low-area", waveform);
  // ...but the medium waveform still loads fine through the RLE slot:
  run_once("low-area", medium_waveform);

  // Phase 3: back to X-MatchPRO when the mission needs the BRAM headroom.
  std::printf("\n  swapping back to X-MatchPRO...\n");
  auto swap_back = sys.swap_decompressor_blocking(compress::CodecId::kXMatchPro);
  if (!swap_back.success) {
    std::printf("  swap failed: %s\n", swap_back.error.c_str());
    return 1;
  }
  run_once("mission", waveform);

  std::printf("\nthe decompressor is just another reconfigurable module: UPaRC swaps\n");
  std::printf("it at gigabyte-per-second speed and retunes its clock afterwards.\n");
  return 0;
}
