// Fault-tolerant configuration scrubber.
//
// The paper's introduction motivates fast reconfiguration with fault-tolerant
// systems: "a long inactive period of a part inside a system may be
// prohibited ... especially in high-performance or fault-tolerant systems."
// This example builds that system: radiation upsets corrupt configuration
// frames at random; a scrubber periodically rewrites the module's golden
// bitstream through UPaRC. Reconfiguration speed directly bounds both the
// repair latency and the fraction of time the module is down.
//
// Runs the same upset campaign with a slow baseline (xps_hwicap) and with
// UPaRC at 362.5 MHz and compares availability.
#include <cstdio>

#include "common/prng.hpp"
#include "core/system.hpp"

namespace {

using namespace uparc;
using namespace uparc::literals;

struct CampaignResult {
  double availability = 0;   // fraction of time the module is intact
  double mean_repair_us = 0; // mean time from upset to repair completion
  unsigned upsets = 0;
};

/// Injects `upsets` random frame corruptions over `horizon`, scrubbing with
/// the supplied reconfigure closure; returns availability statistics.
template <typename Reconfigure>
CampaignResult run_campaign(core::System& sys, const bits::PartialBitstream& golden,
                            Reconfigure&& reconfigure, TimePs horizon, unsigned upsets,
                            u64 seed) {
  Prng rng(seed);
  CampaignResult result;
  result.upsets = upsets;
  TimePs now{};
  TimePs down_time{};
  double repair_sum_us = 0;

  for (unsigned i = 0; i < upsets; ++i) {
    // Upsets arrive uniformly over the horizon slice.
    const TimePs arrival = now + TimePs(rng.range(1, (horizon.ps() / upsets)));
    // Corrupt a random frame in the plane (model: the module is now faulty
    // until the scrubber rewrites it).
    const auto& frame = golden.frames[rng.below(golden.frames.size())];
    Words corrupted = frame.data;
    corrupted[rng.below(corrupted.size())] ^= 1u << rng.below(32);
    sys.plane().write_frame(frame.address, corrupted);

    // Scrub: rewrite the golden bitstream.
    const TimePs repair_time = reconfigure();
    down_time += repair_time;
    repair_sum_us += repair_time.us();
    now = arrival + repair_time;
  }

  result.availability = 1.0 - static_cast<double>(down_time.ps()) / horizon.ps();
  result.mean_repair_us = repair_sum_us / upsets;
  return result;
}

}  // namespace

int main() {
  std::printf("fault-tolerant scrubber: repair latency vs controller speed\n\n");

  bits::GeneratorConfig gen;
  gen.target_body_bytes = 160_KiB;
  gen.design_name = "triplicated_alu";
  gen.seed = 5;
  auto golden = bits::Generator(gen).generate();

  const TimePs horizon = TimePs::from_ms(500);
  const unsigned upsets = 40;

  // Baseline: xps_hwicap re-writes the module at ~14.5 MB/s.
  CampaignResult slow;
  {
    core::System sys;
    auto ctrl = sys.make_baseline("xps_hwicap_cached");
    if (!ctrl->stage(golden).ok()) return 1;
    slow = run_campaign(
        sys, golden,
        [&] {
          std::optional<ctrl::ReconfigResult> r;
          ctrl->reconfigure([&](const ctrl::ReconfigResult& res) { r = res; });
          sys.sim().run();
          return r && r->success ? r->duration() : TimePs::from_ms(100);
        },
        horizon, upsets, 99);
    std::printf("  xps_hwicap : mean repair %8.1f us, availability %.3f%%\n",
                slow.mean_repair_us, slow.availability * 100.0);
  }

  // UPaRC at full speed.
  CampaignResult fast;
  {
    core::System sys;
    (void)sys.set_frequency_blocking(Frequency::mhz(362.5));
    if (!sys.stage(golden).ok()) return 1;
    fast = run_campaign(
        sys, golden,
        [&] {
          auto r = sys.reconfigure_blocking();
          return r.success ? r.duration() : TimePs::from_ms(100);
        },
        horizon, upsets, 99);
    std::printf("  UPaRC      : mean repair %8.1f us, availability %.3f%%\n",
                fast.mean_repair_us, fast.availability * 100.0);

    // After the campaign the plane must hold the golden configuration.
    std::printf("  golden configuration restored: %s\n",
                sys.plane().contains(golden.frames) ? "yes" : "NO");
  }

  std::printf("\n  repair speedup: %.0fx — downtime per upset drops from %.2f ms to %.0f us,\n",
              slow.mean_repair_us / fast.mean_repair_us, slow.mean_repair_us / 1000.0,
              fast.mean_repair_us);
  std::printf("  which is why scrubbing-based fault tolerance needs an ultra-fast\n");
  std::printf("  reconfiguration controller.\n");
  return 0;
}
