// benchdiff — compare freshly produced BENCH_*.json files against the
// checked-in baselines in results/ with per-metric tolerance bands.
//
//   benchdiff --baseline results --fresh /tmp/bench_out [--tol 0.35] [--json]
//   benchdiff --self-test
//
// For every BENCH_*.json present in both directories it extracts the
// top-level scalar numeric fields and classifies each by name:
//
//   higher-is-better  *_per_sec, speedup*, hit_rate*, goodput*, ratio*
//   lower-is-better   *_us, *_ms, *_mw, *_nj, misses, evictions
//   exact             gate_* floors and integer config fields (loads,
//                     module_kb, ...) — any drift is reported, because a
//                     silently moved gate is itself a regression
//
// A directional metric regresses when it is worse than the baseline by
// more than the tolerance fraction; improvements never fail. Exact fields
// compare for equality. The "pass" field must not flip true -> false.
// Exits non-zero when any file regresses, listing each offending metric
// with its baseline, fresh value and band. Baseline files missing from
// the fresh directory are skipped with a note (a bench that did not run
// is a CI-wiring problem, not a perf regression); fresh files missing
// from the baseline are reported as new and pass.
//
// Wall-clock noise note: the bands default to +-35% because these numbers
// come from shared CI runners. benchdiff exists to catch step changes
// (2x+), with the in-bench floors as the backstop for 10x ones.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/io.hpp"

namespace fs = std::filesystem;
using uparc::read_file;

namespace {

struct Metric {
  std::string key;
  double value = 0.0;
  bool boolean = false;  // true/false field, value 1/0
};

enum class Direction { kHigherBetter, kLowerBetter, kExact };

/// Classifies a metric by naming convention (see file comment).
Direction direction_of(const std::string& key) {
  auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return key.size() >= n && key.compare(key.size() - n, n, suffix) == 0;
  };
  auto starts_with = [&](const char* prefix) { return key.rfind(prefix, 0) == 0; };
  if (starts_with("gate_")) return Direction::kExact;
  if (ends_with("_per_sec") || starts_with("speedup") || starts_with("hit_rate") ||
      starts_with("goodput") || starts_with("ratio")) {
    return Direction::kHigherBetter;
  }
  if (ends_with("_us") || ends_with("_ms") || ends_with("_mw") || ends_with("_nj") ||
      key == "misses" || key == "evictions") {
    return Direction::kLowerBetter;
  }
  return Direction::kExact;
}

/// Extracts depth-1 scalar "key": <number|true|false> fields from a JSON
/// object. Nested objects/arrays (per-row sweeps) are skipped whole —
/// benchdiff bands the headline numbers, not every sweep row.
std::vector<Metric> top_level_metrics(const std::string& text) {
  std::vector<Metric> out;
  int depth = 0;
  bool in_str = false;
  std::string cur;      // current string literal
  std::string key;      // last completed depth-1 key
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_str) {
      if (c == '\\' && i + 1 < text.size()) {
        cur += text[i + 1];
        ++i;
      } else if (c == '"') {
        in_str = false;
      } else {
        cur += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_str = true;
        cur.clear();
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        break;
      case ':': {
        if (depth != 1) break;
        key = cur;
        // Scan the value start; only scalars are recorded.
        std::size_t j = i + 1;
        while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j]))) ++j;
        if (j >= text.size()) break;
        if (text[j] == 't' || text[j] == 'f') {
          out.push_back({key, text[j] == 't' ? 1.0 : 0.0, true});
        } else if (text[j] == '-' || std::isdigit(static_cast<unsigned char>(text[j]))) {
          out.push_back({key, std::strtod(text.c_str() + j, nullptr), false});
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

const Metric* find_metric(const std::vector<Metric>& metrics, const std::string& key) {
  for (const Metric& m : metrics) {
    if (m.key == key) return &m;
  }
  return nullptr;
}

struct Finding {
  std::string file;
  std::string key;
  std::string what;  // human-readable verdict
  bool regression = false;
};

/// Diffs one baseline/fresh metric pair into `findings`.
void diff_metric(const std::string& file, const Metric& base, const Metric* fresh,
                 double tol, std::vector<Finding>& findings) {
  char buf[256];
  if (fresh == nullptr) {
    std::snprintf(buf, sizeof buf, "metric missing from fresh run (baseline %g)", base.value);
    findings.push_back({file, base.key, buf, true});
    return;
  }
  if (base.boolean || base.key == "pass") {
    if (base.value > 0.5 && fresh->value < 0.5) {
      findings.push_back({file, base.key, "flipped true -> false", true});
    }
    return;
  }
  const Direction dir = direction_of(base.key);
  const double floor_band = base.value * (1.0 - tol);
  const double ceil_band = base.value * (1.0 + tol);
  bool bad = false;
  switch (dir) {
    case Direction::kHigherBetter:
      bad = fresh->value < floor_band;
      break;
    case Direction::kLowerBetter:
      bad = fresh->value > ceil_band;
      break;
    case Direction::kExact:
      bad = fresh->value != base.value;
      break;
  }
  if (!bad) return;
  if (dir == Direction::kExact) {
    std::snprintf(buf, sizeof buf, "exact field drifted: baseline %g, fresh %g", base.value,
                  fresh->value);
  } else {
    std::snprintf(buf, sizeof buf, "baseline %g, fresh %g, allowed %s %g (%s, tol %.0f%%)",
                  base.value, fresh->value,
                  dir == Direction::kHigherBetter ? ">=" : "<=",
                  dir == Direction::kHigherBetter ? floor_band : ceil_band,
                  dir == Direction::kHigherBetter ? "higher-is-better" : "lower-is-better",
                  tol * 100.0);
  }
  findings.push_back({file, base.key, buf, true});
}

int run_diff(const fs::path& baseline_dir, const fs::path& fresh_dir, double tol, bool json) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(baseline_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  if (ec) {
    std::fprintf(stderr, "benchdiff: cannot read baseline dir %s: %s\n",
                 baseline_dir.string().c_str(), ec.message().c_str());
    return 2;
  }
  std::sort(names.begin(), names.end());
  if (names.empty()) {
    std::fprintf(stderr, "benchdiff: no BENCH_*.json baselines in %s\n",
                 baseline_dir.string().c_str());
    return 2;
  }

  std::vector<Finding> findings;
  int compared = 0, skipped = 0;
  for (const std::string& name : names) {
    auto base_text = read_file((baseline_dir / name).string());
    if (!base_text.ok()) {
      std::fprintf(stderr, "benchdiff: cannot read baseline %s\n", name.c_str());
      return 2;
    }
    auto fresh_text = read_file((fresh_dir / name).string());
    if (!fresh_text.ok()) {
      std::printf("  %-24s skipped (no fresh run)\n", name.c_str());
      ++skipped;
      continue;
    }
    ++compared;
    const auto base = top_level_metrics(
        std::string(base_text.value().begin(), base_text.value().end()));
    const auto fresh = top_level_metrics(
        std::string(fresh_text.value().begin(), fresh_text.value().end()));
    const std::size_t before = findings.size();
    for (const Metric& m : base) diff_metric(name, m, find_metric(fresh, m.key), tol, findings);
    for (const Metric& m : fresh) {
      if (find_metric(base, m.key) == nullptr) {
        findings.push_back({name, m.key, "new metric (no baseline); informational", false});
      }
    }
    std::printf("  %-24s %zu metrics, %zu regression(s)\n", name.c_str(), base.size(),
                findings.size() - before);
  }

  int regressions = 0;
  for (const Finding& f : findings) {
    if (f.regression) {
      ++regressions;
      std::printf("  REGRESSION %s %s: %s\n", f.file.c_str(), f.key.c_str(), f.what.c_str());
    }
  }
  if (json) {
    std::printf("{\"compared\": %d, \"skipped\": %d, \"regressions\": %d, \"tol\": %g}\n",
                compared, skipped, regressions, tol);
  } else {
    std::printf("benchdiff: %d file(s) compared, %d skipped, %d regression(s)\n", compared,
                skipped, regressions);
  }
  return regressions == 0 ? 0 : 1;
}

/// In-process check of the extractor, the direction table and the banding
/// math — runs with no filesystem. Keeps the tool honest without dragging
/// gtest into tools/.
int self_test() {
  int failures = 0;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      ++failures;
      std::printf("  FAIL %s\n", what);
    }
  };

  const std::string doc =
      "{\n"
      "  \"bench\": \"x\",\n  \"events_per_sec\": 1e6,\n  \"mean_us\": 120.5,\n"
      "  \"gate_events_per_sec_min\": 1000,\n  \"pass\": true,\n"
      "  \"sweep\": [{\"mean_us\": 999999}],\n  \"nested\": {\"mean_us\": 5}\n}\n";
  const auto metrics = top_level_metrics(doc);
  expect(metrics.size() == 4, "extracts 4 top-level scalars (string + nested skipped)");
  expect(find_metric(metrics, "mean_us") != nullptr && find_metric(metrics, "mean_us")->value == 120.5,
         "reads mean_us at depth 1, not from the sweep rows");
  expect(find_metric(metrics, "pass") != nullptr && find_metric(metrics, "pass")->boolean,
         "pass parses as boolean");

  expect(direction_of("events_per_sec") == Direction::kHigherBetter, "per_sec is higher-better");
  expect(direction_of("mean_us") == Direction::kLowerBetter, "us is lower-better");
  expect(direction_of("gate_events_per_sec_min") == Direction::kExact, "gate_ is exact");
  expect(direction_of("loads") == Direction::kExact, "unknown config field is exact");

  std::vector<Finding> f;
  Metric base{"events_per_sec", 1000.0, false};
  Metric slow{"events_per_sec", 600.0, false};
  Metric fine{"events_per_sec", 700.0, false};
  Metric fast{"events_per_sec", 9000.0, false};
  diff_metric("t", base, &slow, 0.35, f);
  expect(f.size() == 1, "35% band flags a 40% throughput drop");
  diff_metric("t", base, &fine, 0.35, f);
  expect(f.size() == 1, "30% drop stays inside the 35% band");
  diff_metric("t", base, &fast, 0.35, f);
  expect(f.size() == 1, "improvement never fails");
  diff_metric("t", base, nullptr, 0.35, f);
  expect(f.size() == 2, "missing fresh metric is a regression");
  Metric pass_base{"pass", 1.0, true};
  Metric pass_bad{"pass", 0.0, true};
  diff_metric("t", pass_base, &pass_bad, 0.35, f);
  expect(f.size() == 3, "pass true->false is a regression");

  std::printf("benchdiff self-test: %s\n", failures == 0 ? "ok" : "FAILED");
  return failures == 0 ? 0 : 1;
}

void usage() {
  std::printf(
      "usage: benchdiff --baseline DIR --fresh DIR [--tol FRACTION] [--json]\n"
      "       benchdiff --self-test\n");
}

}  // namespace

int main(int argc, char** argv) {
  fs::path baseline, fresh;
  double tol = 0.35;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--self-test") return self_test();
    if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) { usage(); return 2; }
      baseline = v;
    } else if (arg == "--fresh") {
      const char* v = value();
      if (v == nullptr) { usage(); return 2; }
      fresh = v;
    } else if (arg == "--tol") {
      const char* v = value();
      if (v == nullptr) { usage(); return 2; }
      tol = std::strtod(v, nullptr);
      if (tol <= 0.0 || tol >= 1.0) {
        std::fprintf(stderr, "benchdiff: --tol must be in (0, 1)\n");
        return 2;
      }
    } else if (arg == "--json") {
      json = true;
    } else {
      usage();
      return 2;
    }
  }
  if (baseline.empty() || fresh.empty()) {
    usage();
    return 2;
  }
  return run_diff(baseline, fresh, tol, json);
}
