// uparc_cli — command-line front end to the library.
//
//   uparc_cli gen      --out f.bit [--size-kb N] [--seed S] [--util U]
//                      [--complexity C] [--device v5|v6]
//   uparc_cli inspect  f.bit
//   uparc_cli compress f.bit out.uparc [--codec NAME]
//   uparc_cli ratios   f.bit [more.bit ...]
//   uparc_cli run      f.bit [--mhz F] [--csv trace.csv]
//   uparc_cli inject   f.bit [--site NAME] [--rate R] [--after N] [--burst N]
//                      [--max-fires N] [--param P] [--seed S] [--mhz F]
//   uparc_cli sweep    f.bit
//   uparc_cli lint     f.bit|f.uparc [--json] [--model] [--device v5|v6]
//   uparc_cli lint     --isolation [--devices N] [--regions N] [--modules N]
//   uparc_cli verify-determinism [--scenario serve|soak|crash|all] [--seeds N]
//                      [--seed S] [--requests N] [--txns N] [--json]
//   uparc_cli wal      f.wal [--json]
//   uparc_cli crash-soak [--ops N] [--seed S] [--regions N] [--modules N]
//                      [--module-kb N] [--rate-scale X] [--stride N]
//                      [--max-points N] [--corruptions 0|1] [--json]
//                      [--wal-out f.json] [--recovery-out f.json]
//                      [--sweep-out f.log]
//   uparc_cli trace    f.bit [--out trace.json] [--mhz F] [--metrics] [--json]
//                      [--scrub-rounds N]
//   uparc_cli soak     [--txns N] [--seed S] [--regions N] [--modules N]
//                      [--module-kb N] [--rate-scale X] [--cache 0|1]
//                      [--trace f.json] [--journal f.json] [--metrics f.json]
//                      [--json]
//   uparc_cli cache-stats [--loads N] [--modules N] [--regions N]
//                      [--module-kb N] [--hot-slots N] [--policy lru|energy]
//                      [--seed S] [--json]
//   uparc_cli slo      [--seed S] [--requests N] [--rate X] [--faults F]
//                      [--slo-file f.slo] [--out DIR] [--expect-clean]
//                      [--expect-transition] [--json]
//   uparc_cli help
//
// Codec names: RLE, LZ77, LZ78, Huffman, X-MatchPRO, Zip, 7-zip.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <system_error>
#include <utility>
#include <string>
#include <vector>

#include "analysis/bitstream_lint.hpp"
#include "analysis/isolation_lint.hpp"
#include "analysis/model_lint.hpp"
#include "analysis/replay.hpp"
#include "analysis/wal_lint.hpp"
#include "bitstream/parser.hpp"
#include "bitstream/writer.hpp"
#include "common/io.hpp"
#include "compress/codec.hpp"
#include "compress/registry.hpp"
#include "compress/stats.hpp"
#include "core/system.hpp"
#include "fault/injector.hpp"
#include "region/region_manager.hpp"
#include "scrub/readback.hpp"
#include "scrub/scrubber.hpp"
#include "scrub/seu.hpp"
#include "serve/frontend.hpp"
#include "serve/soak.hpp"
#include "txn/crash_soak.hpp"
#include "txn/soak.hpp"
#include "txn/wal.hpp"

namespace {

using namespace uparc;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] double get_num(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

Args parse_args(int argc, char** argv, int start) {
  Args a;
  for (int i = start; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) == 0) {
      std::string key = s.substr(2);
      std::string value = "true";
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      a.options[key] = value;
    } else {
      a.positional.push_back(std::move(s));
    }
  }
  return a;
}

bits::Device device_from(const Args& a) {
  return a.get("device", "v5") == "v6" ? bits::kVirtex6Lx240t : bits::kVirtex5Sx50t;
}

int cmd_gen(const Args& a) {
  const std::string out = a.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen: --out is required\n");
    return 2;
  }
  bits::GeneratorConfig cfg;
  cfg.device = device_from(a);
  cfg.target_body_bytes = static_cast<std::size_t>(a.get_num("size-kb", 64)) * 1024;
  cfg.seed = static_cast<u64>(a.get_num("seed", 1));
  cfg.utilization = a.get_num("util", 0.95);
  cfg.complexity = a.get_num("complexity", 0.5);
  cfg.design_name = a.get("name", "cli_module");

  auto bs = bits::Generator(cfg).generate();
  auto st = write_file(out, bits::to_file(bs));
  if (!st.ok()) {
    std::fprintf(stderr, "gen: %s\n", st.error().message.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu body bytes, %zu frames, device %s\n", out.c_str(),
              bs.body_bytes(), bs.frames.size(), std::string(cfg.device.name).c_str());
  return 0;
}

int cmd_inspect(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "inspect: need a .bit file\n");
    return 2;
  }
  auto data = read_file(a.positional[0]);
  if (!data.ok()) {
    std::fprintf(stderr, "inspect: %s\n", data.error().message.c_str());
    return 1;
  }
  // Try both devices; the IDCODE check in the parser is lenient at this
  // level (parse_body records, the ICAP enforces), so probe the header.
  for (const auto& device : {bits::kVirtex5Sx50t, bits::kVirtex6Lx240t}) {
    auto parsed = bits::parse_file(device, data.value());
    if (!parsed.ok()) continue;
    const auto& pf = parsed.value();
    if (pf.body.idcode != device.idcode) continue;
    std::printf("design:    %s\n", pf.header.design_name.c_str());
    std::printf("part:      %s (%s)\n", pf.header.part_name.c_str(),
                std::string(device.name).c_str());
    std::printf("date/time: %s %s\n", pf.header.date.c_str(), pf.header.time.c_str());
    std::printf("body:      %u bytes\n", pf.header.body_bytes);
    std::printf("frames:    %zu (frame = %u words)\n", pf.body.frames.size(),
                device.frame_words);
    if (!pf.body.frames.empty()) {
      const auto& s = pf.body.frames.front().address;
      std::printf("region:    top=%u row=%u column=%u minor=%u\n", s.top, s.row, s.column,
                  s.minor);
    }
    std::printf("crc:       %s\n", pf.body.crc_ok ? "ok" : "MISMATCH");
    std::printf("desync:    %s\n", pf.body.desynced ? "yes" : "NO");
    return pf.body.crc_ok ? 0 : 1;
  }
  std::fprintf(stderr, "inspect: not a recognizable bitstream\n");
  return 1;
}

int cmd_compress(const Args& a) {
  if (a.positional.size() < 2) {
    std::fprintf(stderr, "compress: need input and output paths\n");
    return 2;
  }
  auto codec = compress::make_codec(a.get("codec", "X-MatchPRO"));
  if (codec == nullptr) {
    std::fprintf(stderr, "compress: unknown codec\n");
    return 2;
  }
  auto data = read_file(a.positional[0]);
  if (!data.ok()) {
    std::fprintf(stderr, "compress: %s\n", data.error().message.c_str());
    return 1;
  }
  auto sample = compress::measure_verified(*codec, data.value());
  Bytes container = codec->compress(data.value());
  auto st = write_file(a.positional[1], container);
  if (!st.ok()) {
    std::fprintf(stderr, "compress: %s\n", st.error().message.c_str());
    return 1;
  }
  std::printf("%s: %zu -> %zu bytes (%.1f%% saved, round-trip verified)\n",
              std::string(codec->name()).c_str(), sample.original_bytes,
              sample.compressed_bytes, sample.ratio_percent());
  return 0;
}

int cmd_ratios(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "ratios: need at least one file\n");
    return 2;
  }
  auto codecs = compress::table1_codecs();
  std::printf("%-14s", "file");
  for (const auto& c : codecs) std::printf(" %11.11s", std::string(c->name()).c_str());
  std::printf("\n");
  for (const auto& path : a.positional) {
    auto data = read_file(path);
    if (!data.ok()) {
      std::fprintf(stderr, "ratios: %s\n", data.error().message.c_str());
      return 1;
    }
    std::printf("%-14.14s", path.c_str());
    for (const auto& c : codecs) {
      auto sample = compress::measure_verified(*c, data.value());
      std::printf(" %10.1f%%", sample.ratio_percent());
    }
    std::printf("\n");
  }
  return 0;
}

Result<bits::PartialBitstream> load_bitstream(const std::string& path, bits::Device& device) {
  auto data = read_file(path);
  if (!data.ok()) return data.error();
  for (const auto& d : {bits::kVirtex5Sx50t, bits::kVirtex6Lx240t}) {
    auto parsed = bits::parse_file(d, data.value());
    if (!parsed.ok() || parsed.value().body.idcode != d.idcode) continue;
    device = d;
    bits::PartialBitstream bs;
    bs.header = parsed.value().header;
    auto ph = bits::parse_header(data.value());
    BytesView body_bytes =
        BytesView(data.value()).subspan(ph.value().body_offset, bs.header.body_bytes);
    bs.body = bytes_to_words(body_bytes);
    bs.frames = parsed.value().body.frames;
    return bs;
  }
  return make_error("'" + path + "' is not a recognizable bitstream");
}

int cmd_run(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "run: need a .bit file\n");
    return 2;
  }
  bits::Device device = bits::kVirtex5Sx50t;
  auto bs = load_bitstream(a.positional[0], device);
  if (!bs.ok()) {
    std::fprintf(stderr, "run: %s\n", bs.error().message.c_str());
    return 1;
  }

  core::SystemConfig cfg;
  cfg.uparc.device = device;
  core::System sys(cfg);
  const double mhz = a.get_num("mhz", 362.5);
  auto md = sys.set_frequency_blocking(Frequency::mhz(mhz));
  if (md) {
    std::printf("CLK_2 = %.4g MHz (M=%u D=%u)\n", md->f_out.in_mhz(), md->m, md->d);
  }
  if (auto st = sys.stage(bs.value()); !st.ok()) {
    std::fprintf(stderr, "run: %s\n", st.error().message.c_str());
    return 1;
  }
  auto r = sys.reconfigure_blocking();
  if (!r.success) {
    std::fprintf(stderr, "run: reconfiguration failed: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("mode:      %s\n", std::string(sys.uparc().kind()).c_str());
  std::printf("time:      %s\n", to_string(r.duration()).c_str());
  std::printf("bandwidth: %.1f MB/s\n", r.bandwidth().mb_per_sec());
  std::printf("energy:    %.2f uJ\n", r.energy_uj);
  std::printf("verified:  %s\n", sys.plane().contains(bs.value().frames) ? "yes" : "NO");

  const std::string csv = a.get("csv", "");
  if (!csv.empty()) {
    power::VirtualScope scope(*sys.rail());
    auto samples = scope.capture(TimePs(0), r.end + TimePs::from_us(10),
                                 TimePs(std::max<u64>(r.duration().ps() / 500, 1000)));
    auto st = write_text_file(csv, power::VirtualScope::to_csv(samples));
    if (!st.ok()) {
      std::fprintf(stderr, "run: %s\n", st.error().message.c_str());
      return 1;
    }
    std::printf("trace:     %s (%zu samples)\n", csv.c_str(), samples.size());
  }
  return 0;
}

int cmd_inject(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "inject: need a .bit file\n");
    return 2;
  }
  bits::Device device = bits::kVirtex5Sx50t;
  auto bs = load_bitstream(a.positional[0], device);
  if (!bs.ok()) {
    std::fprintf(stderr, "inject: %s\n", bs.error().message.c_str());
    return 1;
  }

  const std::string site_name = a.get("site", "bram_read");
  fault::FaultSite site = fault::FaultSite::kCount;
  for (std::size_t i = 0; i < fault::kFaultSiteCount; ++i) {
    if (site_name == fault::to_string(static_cast<fault::FaultSite>(i))) {
      site = static_cast<fault::FaultSite>(i);
    }
  }
  if (site == fault::FaultSite::kCount) {
    std::fprintf(stderr, "inject: unknown site '%s'; sites:", site_name.c_str());
    for (std::size_t i = 0; i < fault::kFaultSiteCount; ++i) {
      std::fprintf(stderr, " %s", fault::to_string(static_cast<fault::FaultSite>(i)));
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  fault::FaultPlan plan;
  plan.seed = static_cast<u64>(a.get_num("seed", 1));
  fault::SiteConfig cfg;
  cfg.rate = a.get_num("rate", 1e-3);
  cfg.after = static_cast<u64>(a.get_num("after", 0));
  cfg.burst = static_cast<u64>(a.get_num("burst", 1));
  if (a.options.count("max-fires") != 0) {
    cfg.max_fires = static_cast<u64>(a.get_num("max-fires", 0));
  }
  cfg.param = a.get_num("param", 0);
  plan.arm(site, cfg);

  core::SystemConfig sys_cfg;
  sys_cfg.uparc.device = device;
  core::System sys(sys_cfg);
  // Arm before the retune so lock faults can hit the initial relock too.
  fault::FaultInjector inj(sys.sim(), "inject", plan);
  inj.arm(sys.uparc(), sys.icap());
  (void)sys.set_frequency_blocking(Frequency::mhz(a.get_num("mhz", 362.5)));

  auto out = sys.run_recovery_blocking(bs.value());
  std::printf("site:      %s (rate %g, seed %llu)\n", fault::to_string(site), cfg.rate,
              static_cast<unsigned long long>(plan.seed));
  for (const auto& rec : out.history) {
    std::printf("attempt %u: %-12s @ %.4g MHz -> %s%s%s\n", rec.attempt,
                to_string(rec.result.cause), rec.frequency.in_mhz(),
                to_string(rec.action), rec.result.error.empty() ? "" : "  # ",
                rec.result.error.c_str());
  }
  std::printf("outcome:   %s after %u attempt(s), %llu watchdog fire(s)\n",
              out.success ? "recovered" : "FAILED", out.attempts,
              static_cast<unsigned long long>(out.watchdog_fires));
  std::printf("faults:    %llu injected at %s\n",
              static_cast<unsigned long long>(inj.fires(site)), fault::to_string(site));
  std::printf("latency:   %s\n", to_string(out.end - out.start).c_str());
  std::printf("energy:    %.2f uJ total, %.2f uJ spent on recovery\n", out.energy_uj,
              out.recovery_energy_uj);
  return out.success ? 0 : 1;
}

int cmd_lint(const Args& a) {
  if (a.get("isolation", "") == "true") {
    // Shard-isolation audit over a serving fleet (no input file: the fleet
    // itself is the artifact). Each device simulation is one shard.
    serve::FrontEndConfig cfg;
    cfg.seed = static_cast<u64>(a.get_num("seed", 1));
    cfg.devices = static_cast<unsigned>(a.get_num("devices", 2));
    cfg.regions_per_device = static_cast<unsigned>(a.get_num("regions", 2));
    cfg.modules = static_cast<unsigned>(a.get_num("modules", 2));
    serve::FrontEnd fe(cfg);
    const analysis::Report report = fe.lint_isolation();
    if (a.get("json", "") == "true") {
      std::printf("%s", report.render_json().c_str());
    } else {
      std::printf("%s", report.render_text().c_str());
      std::printf("isolation: %u device shard(s), %zu error(s), %zu warning(s)\n",
                  fe.device_count(), report.error_count(),
                  report.count(analysis::Severity::kWarning));
    }
    return report.clean() ? 0 : 1;
  }
  if (a.positional.empty()) {
    std::fprintf(stderr, "lint: need a .bit or .uparc file (or --isolation)\n");
    return 2;
  }
  auto data = read_file(a.positional[0]);
  if (!data.ok()) {
    std::fprintf(stderr, "lint: %s\n", data.error().message.c_str());
    return 1;
  }
  const BytesView file = data.value();
  const bool container = !file.empty() && file[0] == compress::wire::kMagic;

  auto lint_with = [&](const bits::Device& device) {
    return container ? analysis::lint_container(device, file)
                     : analysis::lint_file(device, file);
  };
  // Pick the device: --device wins; otherwise sniff via the IDCODE packet
  // (lint against V5 and fall back to V6 when only the part mismatches).
  analysis::Report report;
  bits::Device device = bits::kVirtex5Sx50t;
  if (a.options.count("device") != 0) {
    device = device_from(a);
    report = lint_with(device);
  } else {
    report = lint_with(bits::kVirtex5Sx50t);
    if (report.has("bs.idcode.mismatch")) {
      analysis::Report v6 = lint_with(bits::kVirtex6Lx240t);
      if (!v6.has("bs.idcode.mismatch")) {
        device = bits::kVirtex6Lx240t;
        report = std::move(v6);
      }
    }
  }

  if (a.get("model", "") == "true") {
    // Also lint the elaborated model a run of this image would execute on.
    core::SystemConfig cfg;
    cfg.uparc.device = device;
    core::System sys(cfg);
    report.merge(analysis::lint_model(sys.sim()));
  }

  if (a.get("json", "") == "true") {
    std::printf("%s", report.render_json().c_str());
  } else {
    std::printf("%s", report.render_text().c_str());
    std::printf("%s: %zu error(s), %zu warning(s) [%s]\n", a.positional[0].c_str(),
                report.error_count(), report.count(analysis::Severity::kWarning),
                std::string(device.name).c_str());
  }
  return report.clean() ? 0 : 1;
}

int cmd_trace(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "trace: need a .bit file\n");
    return 2;
  }
  bits::Device device = bits::kVirtex5Sx50t;
  auto bs = load_bitstream(a.positional[0], device);
  if (!bs.ok()) {
    std::fprintf(stderr, "trace: %s\n", bs.error().message.c_str());
    return 1;
  }

  core::SystemConfig cfg;
  cfg.uparc.device = device;
  cfg.trace = true;
  core::System sys(cfg);
  (void)sys.set_frequency_blocking(Frequency::mhz(a.get_num("mhz", 362.5)));
  if (auto st = sys.stage(bs.value()); !st.ok()) {
    std::fprintf(stderr, "trace: %s\n", st.error().message.c_str());
    return 1;
  }
  auto r = sys.reconfigure_blocking();

  const std::string out = a.get("out", "trace.json");
  if (auto st = write_text_file(out, sys.trace_json()); !st.ok()) {
    std::fprintf(stderr, "trace: %s\n", st.error().message.c_str());
    return 1;
  }

  // Optionally exercise the scrub loop so its registry counters (scans,
  // mismatched frames, repairs, injected upsets) show up under --metrics.
  const auto scrub_rounds = static_cast<unsigned>(a.get_num("scrub-rounds", 0));
  if (scrub_rounds > 0 && r.success) {
    if (auto st = sys.stage(bs.value()); !st.ok()) {
      std::fprintf(stderr, "trace: restage for scrub: %s\n", st.error().message.c_str());
      return 1;
    }
    std::vector<bits::FrameAddress> window;
    for (const auto& f : bs.value().frames) window.push_back(f.address);
    scrub::SeuInjector seu(sys.sim(), "seu", sys.plane(), window, TimePs::from_us(100),
                           static_cast<u64>(a.get_num("seed", 1)));
    scrub::Readback readback(sys.sim(), "readback", sys.icap());
    scrub::Scrubber scrubber(sys.sim(), "scrubber", sys.uparc(), readback,
                             bs.value().frames,
                             scrub::ScrubberConfig{scrub::ScrubMode::kFrameRepair});
    for (unsigned i = 0; i < scrub_rounds; ++i) {
      (void)seu.inject_now();
      scrubber.scrub_once([](bool) {});
      sys.sim().run();
    }
    std::printf("scrub:     %u round(s), %llu frame(s) repaired, %llu upset(s)\n",
                scrub_rounds,
                static_cast<unsigned long long>(scrubber.scrub_stats().repairs),
                static_cast<unsigned long long>(seu.log().size()));
  }

  const obs::Tracer& tr = *sys.tracer();
  std::printf("trace:     %s (%zu spans, %zu categories) — open in ui.perfetto.dev\n",
              out.c_str(), tr.spans().size(), tr.categories().size());
  std::printf("result:    %s, %s, %.2f uJ\n", r.success ? "ok" : "FAILED",
              to_string(r.duration()).c_str(), r.energy_uj);
  std::printf("%-12s %12s %12s\n", "category", "busy us", "energy uJ");
  for (const std::string& cat : tr.categories()) {
    std::printf("%-12s %12.3f %12.2f\n", cat.c_str(), tr.category_total(cat).us(),
                tr.category_energy_uj(cat));
  }

  if (a.get("metrics", "") == "true") {
    const std::string metrics = a.get("json", "") == "true"
                                    ? sys.metrics().render_json()
                                    : sys.metrics().render_text();
    std::printf("%s", metrics.c_str());
    if (!metrics.empty() && metrics.back() != '\n') std::printf("\n");
  }
  return r.success ? 0 : 1;
}

int cmd_soak(const Args& a) {
  txn::SoakConfig cfg;
  cfg.transactions = static_cast<unsigned>(a.get_num("txns", 2000));
  cfg.seed = static_cast<u64>(a.get_num("seed", 1));
  cfg.regions = static_cast<unsigned>(a.get_num("regions", 4));
  cfg.modules = static_cast<unsigned>(a.get_num("modules", 6));
  cfg.module_kb = static_cast<std::size_t>(a.get_num("module-kb", 8));
  cfg.fault_scale = a.get_num("rate-scale", 1.0);
  cfg.cache = a.get_num("cache", 1) != 0;
  const std::string trace_out = a.get("trace", "");
  cfg.trace = !trace_out.empty();

  auto report = txn::run_soak(cfg);

  auto dump = [](const std::string& path, const std::string& what,
                 const std::string& body) {
    if (path.empty()) return true;
    if (auto st = write_text_file(path, body); !st.ok()) {
      std::fprintf(stderr, "soak: %s: %s\n", what.c_str(), st.error().message.c_str());
      return false;
    }
    return true;
  };
  if (!dump(trace_out, "trace", report.trace_json)) return 1;
  if (!dump(a.get("journal", ""), "journal", report.journal_json)) return 1;
  if (!dump(a.get("metrics", ""), "metrics", report.metrics_json)) return 1;

  if (a.get("json", "") == "true") {
    std::printf(
        "{\"transactions\": %u, \"commits\": %u, \"rollbacks_last_good\": %u, "
        "\"rollbacks_blank\": %u, \"failures\": %u, \"software_fallbacks\": %u, "
        "\"quarantines\": %llu, \"fault_fires\": %llu, \"violations\": %zu, "
        "\"ok\": %s}\n",
        report.transactions, report.commits, report.rollbacks_last_good,
        report.rollbacks_blank, report.failures, report.software_fallbacks,
        static_cast<unsigned long long>(report.quarantines),
        static_cast<unsigned long long>(report.fault_fires), report.violations.size(),
        report.ok() ? "true" : "false");
  } else {
    std::printf("%s", report.summary().c_str());
  }
  return report.ok() ? 0 : 1;
}

/// Shared serve-soak config from CLI flags (used by `serve` and `slo`).
serve::ServeSoakConfig serve_config_from(const Args& a) {
  serve::ServeSoakConfig cfg;
  cfg.seed = static_cast<u64>(a.get_num("seed", 1));
  cfg.requests = static_cast<u64>(a.get_num("requests", 2000));
  cfg.devices = std::max(1u, static_cast<unsigned>(a.get_num("devices", 2)));
  cfg.regions_per_device = static_cast<unsigned>(a.get_num("regions", 2));
  cfg.modules = static_cast<unsigned>(a.get_num("modules", 4));
  cfg.load_factor = a.get_num("rate", 2.0);
  cfg.fault_scale = a.get_num("faults", 1.0);
  cfg.dist = a.get("dist", "mixed");
  cfg.queue_capacity = static_cast<std::size_t>(a.get_num("queue", 64));
  // Restart drill: after N completed loads, tear each device's controller
  // down and cold-start it from its WAL mid-soak (0 = off).
  cfg.restart_after_loads = static_cast<u64>(a.get_num("restart-after", 0));
  // Parallel fleet: N executor workers drive the device shards in barrier
  // epochs (0 = classic sequential path). Results are identical for any
  // N >= 1; only wall-clock changes.
  cfg.workers = static_cast<unsigned>(a.get_num("workers", 0));
  return cfg;
}

/// Writes the telemetry/alert/flight artifact set into `dir`.
int write_telemetry_artifacts(const std::string& dir, const serve::ServeSoakReport& report,
                              const char* cmd) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "%s: cannot create %s: %s\n", cmd, dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  const std::pair<const char*, const std::string*> artifacts[] = {
      {"telemetry.json", &report.telemetry_json},
      {"telemetry.csv", &report.telemetry_csv},
      {"alerts.json", &report.alerts_json},
      {"flight.json", &report.flight_json},
  };
  for (const auto& [name, text] : artifacts) {
    if (auto st = write_text_file(dir + "/" + name, *text); !st.ok()) {
      std::fprintf(stderr, "%s: %s: %s\n", cmd, name, st.error().message.c_str());
      return 1;
    }
  }
  return 0;
}

int cmd_serve(const Args& a) {
  serve::ServeSoakConfig cfg = serve_config_from(a);
  // Placeholder for multi-tenant override: --tenants N replicates the
  // standard mix N/3 times per class (rounded up) at the same total load.
  const auto tenants = static_cast<unsigned>(a.get_num("tenants", 3));
  (void)tenants;  // the mixed preset always runs one tenant per class

  const std::string telemetry_out = a.get("telemetry-out", "");
  if (!telemetry_out.empty() || a.options.count("telemetry-us") != 0) {
    cfg.telemetry_interval = TimePs::from_us(a.get_num("telemetry-us", 250));
  }

  auto report = serve::run_soak(cfg);

  if (const std::string path = a.get("metrics", ""); !path.empty()) {
    if (auto st = write_text_file(path, report.metrics_json); !st.ok()) {
      std::fprintf(stderr, "serve: metrics: %s\n", st.error().message.c_str());
      return 1;
    }
  }
  if (const std::string path = a.get("health", ""); !path.empty()) {
    if (auto st = write_text_file(path, report.health_json); !st.ok()) {
      std::fprintf(stderr, "serve: health: %s\n", st.error().message.c_str());
      return 1;
    }
  }
  if (!telemetry_out.empty()) {
    if (int rc = write_telemetry_artifacts(telemetry_out, report, "serve"); rc != 0) {
      return rc;
    }
  }

  if (a.get("json", "") == "true") {
    std::printf(
        "{\"issued\": %llu, \"rated_rps\": %.1f, \"offered_rps\": %.1f, "
        "\"completed\": [%llu, %llu, %llu], \"deadline_miss\": [%llu, %llu, %llu], "
        "\"rejected\": [%llu, %llu, %llu], \"shed\": [%llu, %llu, %llu], "
        "\"timed_out\": [%llu, %llu, %llu], \"retries\": %llu, "
        "\"breaker_opens\": %llu, \"software_fallbacks\": %llu, "
        "\"fault_fires\": %llu, \"violations\": %zu, \"ok\": %s}\n",
        static_cast<unsigned long long>(report.issued), report.rated_rps,
        report.offered_rps, static_cast<unsigned long long>(report.completed[0]),
        static_cast<unsigned long long>(report.completed[1]),
        static_cast<unsigned long long>(report.completed[2]),
        static_cast<unsigned long long>(report.deadline_miss[0]),
        static_cast<unsigned long long>(report.deadline_miss[1]),
        static_cast<unsigned long long>(report.deadline_miss[2]),
        static_cast<unsigned long long>(report.rejected[0]),
        static_cast<unsigned long long>(report.rejected[1]),
        static_cast<unsigned long long>(report.rejected[2]),
        static_cast<unsigned long long>(report.shed[0]),
        static_cast<unsigned long long>(report.shed[1]),
        static_cast<unsigned long long>(report.shed[2]),
        static_cast<unsigned long long>(report.timed_out[0]),
        static_cast<unsigned long long>(report.timed_out[1]),
        static_cast<unsigned long long>(report.timed_out[2]),
        static_cast<unsigned long long>(report.retries),
        static_cast<unsigned long long>(report.breaker_opens),
        static_cast<unsigned long long>(report.software_fallbacks),
        static_cast<unsigned long long>(report.fault_fires), report.violations.size(),
        report.ok() ? "true" : "false");
  } else {
    std::printf("%s", report.summary().c_str());
  }
  return report.ok() ? 0 : 1;
}

// Runs a serve soak with telemetry + SLO burn-rate alerting and reports the
// alert log. Gates for CI: --expect-clean fails on any alert;
// --expect-transition fails unless at least one alert fired AND resolved.
int cmd_slo(const Args& a) {
  serve::ServeSoakConfig cfg = serve_config_from(a);
  cfg.load_factor = a.get_num("rate", 1.0);
  cfg.fault_scale = a.get_num("faults", 0.0);
  cfg.telemetry_interval = TimePs::from_us(a.get_num("telemetry-us", 250));
  cfg.telemetry_capacity = static_cast<std::size_t>(a.get_num("capacity", 4096));

  if (const std::string path = a.get("slo-file", ""); !path.empty()) {
    auto bytes = read_file(path);
    if (!bytes.ok()) {
      std::fprintf(stderr, "slo: %s\n", bytes.error().message.c_str());
      return 2;
    }
    std::string text(bytes.value().begin(), bytes.value().end());
    std::size_t pos = 0;
    while (pos <= text.size()) {
      std::size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) nl = text.size();
      std::string line = text.substr(pos, nl - pos);
      pos = nl + 1;
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      // Validate here so a typo is a CLI error, not a soak abort.
      auto parsed = obs::parse_objective(line);
      if (!parsed.ok()) {
        std::fprintf(stderr, "slo: %s\n", parsed.error().message.c_str());
        return 2;
      }
      cfg.slo_lines.push_back(std::move(line));
    }
  }

  auto report = serve::run_soak(cfg);

  if (const std::string out = a.get("out", ""); !out.empty()) {
    if (int rc = write_telemetry_artifacts(out, report, "slo"); rc != 0) return rc;
  }

  bool gate_ok = report.ok();
  std::string gate_why;
  if (a.get("expect-clean", "") == "true" && report.alerts_fired != 0) {
    gate_ok = false;
    gate_why = "expected a clean run but " + std::to_string(report.alerts_fired) +
               " alert(s) fired";
  }
  if (a.get("expect-transition", "") == "true" &&
      (report.alerts_fired == 0 || report.alerts_resolved == 0)) {
    gate_ok = false;
    gate_why = "expected a firing->resolved transition but saw fired=" +
               std::to_string(report.alerts_fired) +
               " resolved=" + std::to_string(report.alerts_resolved);
  }

  if (a.get("json", "") == "true") {
    std::printf(
        "{\"issued\": %llu, \"alerts_fired\": %llu, \"alerts_resolved\": %llu, "
        "\"violations\": %zu, \"ok\": %s}\n",
        static_cast<unsigned long long>(report.issued),
        static_cast<unsigned long long>(report.alerts_fired),
        static_cast<unsigned long long>(report.alerts_resolved), report.violations.size(),
        gate_ok ? "true" : "false");
  } else {
    std::printf("%s", report.summary().c_str());
    if (!report.alerts_json.empty()) {
      std::printf("alert log:\n%s", report.alerts_fired + report.alerts_resolved == 0
                                        ? "  (no alerts)\n"
                                        : report.alerts_json.c_str());
    }
  }
  if (!gate_why.empty()) std::fprintf(stderr, "slo: %s\n", gate_why.c_str());
  return gate_ok ? 0 : 1;
}

int cmd_sweep(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "sweep: need a .bit file\n");
    return 2;
  }
  bits::Device device = bits::kVirtex5Sx50t;
  auto bs = load_bitstream(a.positional[0], device);
  if (!bs.ok()) {
    std::fprintf(stderr, "sweep: %s\n", bs.error().message.c_str());
    return 1;
  }
  std::printf("%10s %12s %10s %10s\n", "CLK_2", "time", "MB/s", "uJ");
  for (double mhz : {50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 362.5}) {
    core::SystemConfig cfg;
    cfg.uparc.device = device;
    core::System sys(cfg);
    (void)sys.set_frequency_blocking(Frequency::mhz(mhz));
    if (!sys.stage(bs.value()).ok()) continue;
    auto r = sys.reconfigure_blocking();
    if (!r.success) continue;
    std::printf("%7.1f MHz %12s %10.1f %10.2f\n", mhz, to_string(r.duration()).c_str(),
                r.bandwidth().mb_per_sec(), r.energy_uj);
  }
  return 0;
}

// Canned repeated-load workload for cache-stats: round-robin over a small
// module set across the regions, so every module is loaded many times and
// relocation sharing (same content, different origin) gets exercised.
struct CacheStatsRun {
  unsigned completed = 0;
  unsigned failed = 0;
  double total_us = 0;
  double hit_us = 0;
  double miss_us = 0;
  unsigned hit_loads = 0;
  unsigned miss_loads = 0;
};

CacheStatsRun run_cache_workload(core::System& sys, unsigned loads, unsigned modules,
                                 unsigned regions, std::size_t module_kb, u64 seed) {
  CacheStatsRun out;
  sim::Simulation& sim = sys.sim();
  const bits::Device& device = sys.uparc().config().device;

  std::vector<bits::PartialBitstream> images;
  region::ModuleLibrary library;
  std::size_t frames_per_module = 0;
  for (unsigned m = 0; m < modules; ++m) {
    bits::GeneratorConfig gen;
    gen.device = device;
    gen.target_body_bytes = module_kb * 1024;
    gen.seed = seed * 1000 + m + 1;
    gen.design_name = "m" + std::to_string(m);
    images.push_back(bits::Generator(gen).generate());
    frames_per_module = images.back().frames.size();
    if (!library.add_module(gen.design_name, images.back()).ok()) return out;
  }

  region::Floorplan floorplan(device);
  const u32 column_stride = static_cast<u32>(frames_per_module / 128 + 1);
  for (unsigned r = 0; r < regions; ++r) {
    region::RegionGeometry geom;
    geom.origin = bits::FrameAddress{0, 0, 0, 1 + r * column_stride, 0};
    geom.frame_count = static_cast<u32>(frames_per_module);
    if (!floorplan.add_region("r" + std::to_string(r), geom).ok()) return out;
  }
  region::RegionManager manager(sim, "region_mgr", std::move(floorplan), library,
                                sys.uparc(), sys.plane());

  for (unsigned i = 0; i < loads; ++i) {
    const std::string module = "m" + std::to_string(i % modules);
    const std::string region = "r" + std::to_string(i % regions);
    std::map<std::string, std::string> unused;
    std::optional<region::LoadResult> got;
    manager.load(module, region, [&](const region::LoadResult& r) { got = r; });
    sim.run();
    if (!got || !got->success) {
      ++out.failed;
      continue;
    }
    ++out.completed;
    const double us = got->total_latency().us();
    out.total_us += us;
    if (cache::is_hit(got->cache_tier)) {
      ++out.hit_loads;
      out.hit_us += us;
    } else {
      ++out.miss_loads;
      out.miss_us += us;
    }
  }
  return out;
}

int cmd_cache_stats(const Args& a) {
  const unsigned loads = static_cast<unsigned>(a.get_num("loads", 64));
  const unsigned modules = std::max(1u, static_cast<unsigned>(a.get_num("modules", 3)));
  const unsigned regions = std::max(1u, static_cast<unsigned>(a.get_num("regions", 2)));
  const std::size_t module_kb =
      std::max<std::size_t>(1, static_cast<std::size_t>(a.get_num("module-kb", 64)));
  const u64 seed = static_cast<u64>(a.get_num("seed", 1));

  core::SystemConfig cfg;
  cfg.with_cache = true;
  cfg.cache_policy = a.get("policy", "lru");
  cfg.cache.hot_slots = static_cast<std::size_t>(a.get_num("hot-slots", 2));
  cfg.cache.hot_slot_bytes = module_kb * 1024 + 4096;
  core::System sys(cfg);
  if (sys.cache() == nullptr) {
    std::fprintf(stderr, "cache-stats: unknown --policy (use lru or energy)\n");
    return 2;
  }
  CacheStatsRun cached = run_cache_workload(sys, loads, modules, regions, module_kb, seed);

  // Identical workload with the cache detached: the baseline every load
  // pays the full external-storage preload against.
  core::SystemConfig base_cfg;
  core::System base(base_cfg);
  CacheStatsRun uncached =
      run_cache_workload(base, loads, modules, regions, module_kb, seed);

  const cache::BitstreamCache& c = *sys.cache();
  const auto resident = static_cast<u64>(
      sys.metrics().counter_value("uparc.cache_resident_hits"));
  const double mean = [](double us, unsigned n) {
    return n == 0 ? 0.0 : us / n;
  }(cached.total_us, cached.completed);
  const double base_mean = uncached.completed == 0
                               ? 0.0
                               : uncached.total_us / uncached.completed;
  const double speedup = mean > 0 ? base_mean / mean : 0.0;
  const u64 lookups = c.hits() + resident + c.misses();
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(c.hits() + resident) / static_cast<double>(lookups);

  if (a.get("json", "") == "true") {
    std::printf(
        "{\"loads\": %u, \"completed\": %u, \"failed\": %u, "
        "\"hits_resident\": %llu, \"hits_hot\": %llu, \"hits_staging\": %llu, "
        "\"misses\": %llu, \"hit_rate\": %.4f, \"evictions\": %llu, "
        "\"relocations\": %llu, \"poisoned_rejects\": %llu, "
        "\"mean_load_us\": %.2f, \"mean_load_us_uncached\": %.2f, "
        "\"speedup\": %.2f, \"policy\": \"%s\"}\n",
        loads, cached.completed, cached.failed,
        static_cast<unsigned long long>(resident),
        static_cast<unsigned long long>(c.hits_hot()),
        static_cast<unsigned long long>(c.hits_staging()),
        static_cast<unsigned long long>(c.misses()), hit_rate,
        static_cast<unsigned long long>(c.evictions()),
        static_cast<unsigned long long>(c.relocations()),
        static_cast<unsigned long long>(c.poisoned_rejects()), mean, base_mean, speedup,
        std::string(c.policy().name()).c_str());
    return cached.failed == 0 ? 0 : 1;
  }

  std::printf("bitstream cache: %u loads, %u modules x %zu KB over %u regions (%s)\n",
              loads, modules, module_kb, regions, std::string(c.policy().name()).c_str());
  std::printf("  hits      resident %llu  hot %llu  staging %llu   (rate %.1f%%)\n",
              static_cast<unsigned long long>(resident),
              static_cast<unsigned long long>(c.hits_hot()),
              static_cast<unsigned long long>(c.hits_staging()), hit_rate * 100.0);
  std::printf("  misses    %llu   evictions %llu   relocation shares %llu   poisoned %llu\n",
              static_cast<unsigned long long>(c.misses()),
              static_cast<unsigned long long>(c.evictions()),
              static_cast<unsigned long long>(c.relocations()),
              static_cast<unsigned long long>(c.poisoned_rejects()));
  std::printf("  occupancy %zu entries (%zu hot), %zu KB staged\n", c.entry_count(),
              c.hot_count(), c.staging_bytes_used() / 1024);
  std::printf("  latency   mean load %.1f us cached vs %.1f us uncached  (%.1fx)\n", mean,
              base_mean, speedup);
  return cached.failed == 0 ? 0 : 1;
}

int cmd_wal(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "wal: need a log file\n");
    return 2;
  }
  auto data = read_file(a.positional.front());
  if (!data.ok()) {
    std::fprintf(stderr, "wal: %s\n", data.error().message.c_str());
    return 1;
  }
  const txn::WalScan scan = txn::scan_wal(data.value());
  const analysis::Report report = analysis::lint_wal(scan);
  if (a.get("json", "") == "true") {
    std::printf("{\"scan\":%s,\"lint\":%s}\n", txn::render_wal_json(scan).c_str(),
                report.render_json().c_str());
  } else {
    std::printf("%s", txn::render_wal_text(scan).c_str());
    if (!report.empty()) std::printf("%s", report.render_text().c_str());
  }
  // Any damage is a non-zero exit: errors mean the log lies about history,
  // warnings (torn/corrupt tail) mean it needs recovery before reuse.
  const bool damaged =
      report.error_count() > 0 || report.count(analysis::Severity::kWarning) > 0;
  return damaged ? 1 : 0;
}

int cmd_crash_soak(const Args& a) {
  txn::CrashSoakConfig cfg;
  cfg.seed = static_cast<u64>(a.get_num("seed", 1));
  cfg.ops = static_cast<unsigned>(a.get_num("ops", 10));
  cfg.regions = static_cast<unsigned>(a.get_num("regions", 2));
  cfg.modules = static_cast<unsigned>(a.get_num("modules", 3));
  cfg.module_kb = static_cast<std::size_t>(a.get_num("module-kb", 4));
  cfg.fault_scale = a.get_num("rate-scale", 1.0);
  cfg.crash_stride = std::max(1u, static_cast<unsigned>(a.get_num("stride", 1)));
  cfg.max_crash_points = static_cast<unsigned>(a.get_num("max-points", 0));
  cfg.sweep_corruptions = a.get_num("corruptions", 1) != 0;

  const txn::CrashSoakReport report = txn::run_crash_soak(cfg);

  auto dump = [](const std::string& path, const std::string& what,
                 const std::string& body) {
    if (path.empty()) return true;
    if (auto st = write_text_file(path, body); !st.ok()) {
      std::fprintf(stderr, "crash-soak: %s: %s\n", what.c_str(),
                   st.error().message.c_str());
      return false;
    }
    return true;
  };
  if (!dump(a.get("wal-out", ""), "wal", report.reference_wal_json)) return 1;
  if (!dump(a.get("recovery-out", ""), "recovery", report.last_recovery_json)) return 1;
  if (!dump(a.get("sweep-out", ""), "sweep", report.sweep_log)) return 1;

  if (a.get("json", "") == "true") {
    std::printf(
        "{\"reference_records\": %llu, \"runs\": %u, \"crashes\": %u, "
        "\"recoveries_ok\": %u, \"unacked_commits\": %u, \"adopted\": %u, "
        "\"reprogrammed\": %u, \"aborts_clean\": %u, \"aborts_reprogram\": %u, "
        "\"violations\": %zu, \"ok\": %s}\n",
        static_cast<unsigned long long>(report.reference_records), report.runs,
        report.crashes, report.recoveries_ok, report.unacked_commits, report.adopted,
        report.reprogrammed, report.aborts_clean, report.aborts_reprogram,
        report.violations.size(), report.ok() ? "true" : "false");
  } else {
    std::printf("%s", report.summary().c_str());
  }
  return report.ok() ? 0 : 1;
}

int cmd_verify_determinism(const Args& a) {
  const std::string scenario = a.get("scenario", "all");
  if (scenario != "all" && scenario != "serve" && scenario != "soak" &&
      scenario != "crash") {
    std::fprintf(stderr,
                 "verify-determinism: --scenario must be serve, soak, crash or all\n");
    return 2;
  }
  const unsigned seeds = static_cast<unsigned>(a.get_num("seeds", 1));
  const u64 seed0 = static_cast<u64>(a.get_num("seed", 1));
  const bool json = a.get("json", "") == "true";

  std::vector<analysis::ReplayResult> results;
  for (unsigned i = 0; i < seeds; ++i) {
    const u64 seed = seed0 + i;
    if (scenario == "all" || scenario == "serve") {
      serve::ServeSoakConfig cfg;
      cfg.seed = seed;
      cfg.requests = static_cast<u64>(a.get_num("requests", 300));
      cfg.devices = static_cast<unsigned>(a.get_num("devices", 2));
      results.push_back(analysis::verify_serve_replay(cfg));
      // Same scenario through the sharded executor: 1 worker vs 4 workers
      // must be byte-identical (worker-count invariance).
      results.push_back(analysis::verify_parallel_replay(cfg));
    }
    if (scenario == "all" || scenario == "soak") {
      txn::SoakConfig cfg;
      cfg.seed = seed;
      cfg.transactions = static_cast<unsigned>(a.get_num("txns", 200));
      results.push_back(analysis::verify_txn_replay(cfg));
    }
    if (scenario == "all" || scenario == "crash") {
      txn::CrashSoakConfig cfg;
      cfg.seed = seed;
      cfg.ops = static_cast<unsigned>(a.get_num("ops", 6));
      // The gate proves recovery reproducibility, not coverage — a bounded
      // sweep keeps it fast; the crash-soak job owns exhaustiveness.
      cfg.max_crash_points = static_cast<unsigned>(a.get_num("max-points", 8));
      cfg.sweep_corruptions = a.get_num("corruptions", 1) != 0;
      results.push_back(analysis::verify_crash_replay(cfg));
    }
  }

  bool all_identical = true;
  analysis::Report merged;
  for (const analysis::ReplayResult& r : results) {
    all_identical = all_identical && r.identical();
    merged.merge(r.report);
    if (!json) std::printf("%s\n", r.summary().c_str());
  }
  if (json) {
    std::printf("%s", merged.render_json().c_str());
  } else {
    std::printf("verify-determinism: %zu replay(s), %zu divergence(s) -> %s\n",
                results.size(), merged.diagnostics().size(),
                all_identical ? "DETERMINISTIC" : "NONDETERMINISTIC");
  }
  return all_identical ? 0 : 1;
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "uparc_cli <command> [args]\n"
      "  gen      generate a synthetic partial bitstream\n"
      "           --out f.bit [--size-kb N] [--seed S] [--util U]\n"
      "           [--complexity C] [--device v5|v6] [--name NAME]\n"
      "  inspect  f.bit — parse and describe a bitstream\n"
      "  compress in out [--codec NAME] — build a compressed container\n"
      "  ratios   f.bit [more...] — Table I compression-ratio matrix\n"
      "  run      f.bit [--mhz F] [--csv trace.csv] — one reconfiguration\n"
      "  inject   f.bit — reconfigure under injected faults with recovery\n"
      "           [--site NAME] [--rate R] [--after N] [--burst N]\n"
      "           [--max-fires N] [--param P] [--seed S] [--mhz F]\n"
      "  sweep    f.bit — bandwidth/energy across CLK_2 frequencies\n"
      "  lint     f.bit|f.uparc [--json] [--model] [--device v5|v6]\n"
      "           --isolation [--devices N] [--regions N] [--modules N]\n"
      "           [--seed S] [--json] — shard-isolation audit (iso.* rules)\n"
      "           over a serving fleet; no input file needed\n"
      "  verify-determinism  run a seeded scenario twice, byte-diff every\n"
      "           artifact (journal/metrics/trace/health); exits non-zero\n"
      "           on any divergence (rule det.replay.divergence)\n"
      "           [--scenario serve|soak|crash|all] [--seeds N] [--seed S]\n"
      "           [--requests N] [--txns N] [--devices N] [--json]\n"
      "  trace    f.bit [--out trace.json] [--mhz F] [--metrics] [--json]\n"
      "           [--scrub-rounds N] [--seed S]\n"
      "           — traced reconfiguration: Chrome trace_event JSON\n"
      "           (load in ui.perfetto.dev or chrome://tracing) plus\n"
      "           per-category busy time/energy; --metrics dumps the\n"
      "           metrics registry (text, or JSON with --json);\n"
      "           --scrub-rounds injects SEUs and scrubs between dumps\n"
      "  soak     chaos soak: randomized transactional reconfigurations\n"
      "           under full-rate fault injection with invariant checks\n"
      "           [--txns N] [--seed S] [--regions N] [--modules N]\n"
      "           [--module-kb N] [--rate-scale X] [--cache 0|1]\n"
      "           [--trace f.json] [--journal f.json] [--metrics f.json]\n"
      "           [--json] — exits non-zero on any invariant violation\n"
      "  serve    multi-tenant serving soak: admission control, EDF queues,\n"
      "           device failover and load shedding at a multiple of the\n"
      "           fleet's rated capacity, with per-request invariants\n"
      "           [--requests N] [--rate X] [--devices N] [--regions N]\n"
      "           [--modules N] [--dist mixed|open|closed|bursty]\n"
      "           [--faults X] [--queue N] [--tenants N] [--seed S]\n"
      "           [--restart-after N] [--metrics f.json] [--health f.json]\n"
      "           [--workers N] [--json]\n"
      "           [--telemetry-out DIR] [--telemetry-us T]\n"
      "           — exits non-zero on any invariant violation;\n"
      "           --workers N >= 1 runs the fleet on the sharded parallel\n"
      "           executor (byte-identical artifacts for any N);\n"
      "           --telemetry-out writes telemetry.json/.csv, alerts.json\n"
      "           and the flight-recorder dump (flight.json) into DIR\n"
      "  slo      serve soak with telemetry + SLO burn-rate alerting:\n"
      "           declarative objectives over sliding windows, fast+slow\n"
      "           burn windows with hysteresis, deterministic alert log\n"
      "           [--requests N] [--rate X] [--faults X] [--seed S]\n"
      "           [--workers N] [--telemetry-us T] [--slo-file f.slo] [--out DIR]\n"
      "           [--expect-clean] [--expect-transition] [--json]\n"
      "           — --expect-clean fails if any alert fires;\n"
      "           --expect-transition fails without a fire->resolve pair\n"
      "  wal      f.wal [--json] — dump and lint a write-ahead log: every\n"
      "           decodable record, the tail classification (clean/torn/\n"
      "           corrupt) and the wal.* rule findings; exits non-zero on\n"
      "           any damage (torn tails need recovery, mid-log holes are\n"
      "           media loss)\n"
      "  crash-soak  crash-restart chaos soak: replay a deterministic\n"
      "           workload, killing the controller at every reachable WAL\n"
      "           record boundary (x every tail-corruption mode), recover\n"
      "           cold from the surviving log + fabric and assert the\n"
      "           crash-consistency invariants\n"
      "           [--ops N] [--seed S] [--regions N] [--modules N]\n"
      "           [--module-kb N] [--rate-scale X] [--stride N]\n"
      "           [--max-points N] [--corruptions 0|1] [--json]\n"
      "           [--wal-out f.json] [--recovery-out f.json]\n"
      "           [--sweep-out f.log] — exits non-zero on any violation\n"
      "  cache-stats  repeated-load workload through the bitstream cache:\n"
      "           hit/miss/eviction/relocation counts per tier and the\n"
      "           latency comparison against a cache-less controller\n"
      "           [--loads N] [--modules N] [--regions N] [--module-kb N]\n"
      "           [--hot-slots N] [--policy lru|energy] [--seed S] [--json]\n"
      "  help     show this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  Args args = parse_args(argc, argv, 2);
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    usage(stdout);
    return 0;
  }
  if (cmd == "gen") return cmd_gen(args);
  if (cmd == "inspect") return cmd_inspect(args);
  if (cmd == "compress") return cmd_compress(args);
  if (cmd == "ratios") return cmd_ratios(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "inject") return cmd_inject(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "soak") return cmd_soak(args);
  if (cmd == "wal") return cmd_wal(args);
  if (cmd == "crash-soak") return cmd_crash_soak(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "slo") return cmd_slo(args);
  if (cmd == "cache-stats") return cmd_cache_stats(args);
  if (cmd == "lint") return cmd_lint(args);
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "verify-determinism") return cmd_verify_determinism(args);
  std::fprintf(stderr, "uparc_cli: unknown command '%s'\n", cmd.c_str());
  usage(stderr);
  return 2;
}
