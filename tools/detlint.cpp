// detlint: nondeterminism source lint over the uparc tree.
//
// Recursively scans a source root (default: the src/ next to the binary's
// repo, or the path given) for *.cpp/*.hpp files, runs
// analysis::lint_source on each, filters findings through a checked-in
// allowlist, and exits nonzero if any non-allowlisted diagnostic remains.
// CI runs this as a required job (workflow `detlint`); the inline
// `// detlint:allow(rule)` marker suppresses single lines at the source.
//
// Usage:
//   detlint [--root DIR] [--allowlist FILE] [--json] [--list-rules]
//
// Allowlist format (one entry per line, '#' comments):
//   <rule-id> <path-substring>
// e.g. "det.container.unordered src/third_party/" — a finding is allowed
// when its rule matches and the entry's substring occurs in the file path.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/source_lint.hpp"

namespace fs = std::filesystem;
using uparc::analysis::Diagnostic;
using uparc::analysis::Report;

namespace {

struct AllowEntry {
  std::string rule;
  std::string path_substring;
};

std::vector<AllowEntry> load_allowlist(const std::string& path) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    AllowEntry e;
    if (ls >> e.rule >> e.path_substring) entries.push_back(std::move(e));
  }
  return entries;
}

bool allowed(const Diagnostic& d, const std::vector<AllowEntry>& allow) {
  return std::any_of(allow.begin(), allow.end(), [&](const AllowEntry& e) {
    return d.rule == e.rule &&
           d.location.path.find(e.path_substring) != std::string::npos;
  });
}

std::vector<fs::path> collect_sources(const fs::path& root) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());  // deterministic scan order
  return files;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: detlint [--root DIR] [--allowlist FILE] [--json] [--list-rules]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = "src";
  std::string allowlist_path;
  bool json = false;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else {
      return usage();
    }
  }
  if (list_rules) {
    std::printf(
        "det.global.mutable\ndet.rand.libc\ndet.rand.device\ndet.time.wall-clock\n"
        "det.rng.std\ndet.container.unordered\ndet.key.pointer\ndet.thread.raw\n");
    return 0;
  }
  if (!fs::exists(root)) {
    std::fprintf(stderr, "detlint: source root '%s' does not exist\n", root.c_str());
    return 2;
  }
  const std::vector<AllowEntry> allow =
      allowlist_path.empty() ? std::vector<AllowEntry>{} : load_allowlist(allowlist_path);

  Report kept;
  std::size_t files = 0;
  std::size_t suppressed = 0;
  for (const fs::path& p : collect_sources(root)) {
    ++files;
    const Report r = uparc::analysis::lint_source(p.generic_string(), read_file(p));
    for (const Diagnostic& d : r.diagnostics()) {
      if (allowed(d, allow)) {
        ++suppressed;
      } else {
        kept.add(d);
      }
    }
  }

  if (json) {
    std::fputs(kept.render_json().c_str(), stdout);
  } else {
    std::fputs(kept.render_text().c_str(), stdout);
    std::printf("detlint: %zu files, %zu finding(s), %zu allowlisted\n", files,
                kept.diagnostics().size(), suppressed);
  }
  return kept.empty() ? 0 : 1;
}
